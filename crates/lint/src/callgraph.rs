//! Workspace-wide call graph and the interprocedural rule families built on
//! it: R12 `panic-path` and R13 `determinism-taint`.
//!
//! The per-line rules (R1–R11) are file-local: they see a `.unwrap()` but
//! not a public API that reaches one through three private helpers, and they
//! sanction wall-clock *sites* without seeing a clock value laundered
//! through a utility function into a result-affecting crate. This module
//! closes that gap. It extracts every `fn` item from the block IR
//! ([`crate::blocks`]), every call site from the lossless token stream
//! ([`crate::lex`]), resolves calls lexically across the workspace, and
//! builds a directed call graph with deterministic node ordering (nodes
//! sorted by `(file, line, col)`, edges deduplicated and sorted).
//!
//! # Resolution rules
//!
//! Resolution is deliberately conservative: anything the lexical rules
//! cannot pin down is *opaque* — no edge, assumed clean — so the
//! interprocedural families never fire on a guess. A call resolves when:
//!
//! 1. its path qualifier's first segment names a workspace crate, directly
//!    (`lead_geo::dist(…)`) or through a `use`-import alias
//!    (`use lead_geo::csv; … csv::read(…)`), or is `crate`/`self`/`super`
//!    (the caller's own crate): edges to every `fn` of that name in the
//!    named crate;
//! 2. it is unqualified and a `fn` of that name exists in the same file:
//!    edges to the same-file matches;
//! 3. it is unqualified and the name was imported (`use lead_geo::dist;`):
//!    edges to every `fn` of that name in the imported crate;
//! 4. otherwise — including method calls (`x.merge(…)`) and paths rooted in
//!    a type (`Detector::new`) — the name must be *unique* across the
//!    caller's reachable crate set (its own crate plus transitive declared
//!    non-dev workspace dependencies); ambiguity means opaque.
//!
//! Calls inside `macro_rules!` bodies, `#[cfg(test)]` regions, and crates
//! outside the `lib`/`result-lib` classes stay out of the graph.
//!
//! # The rule families
//!
//! **R12 `panic-path`**: every `pub fn` of a result-affecting crate must not
//! transitively reach a panic site (R2's site detection: `panic!`,
//! `.unwrap()`, `.expect(`, `unreachable!`, literal indexing). Sites inside
//! `#[cfg(test)]` or on a `debug_assert!` line are exempt. A
//! `lint: allow(panic-path)` waiver on a site line exempts that site; on a
//! `fn`'s declaration line it certifies the whole function (propagation
//! stops there). Diagnostics print the full witness path
//! (`a → b → c: panics at path:line`), chosen by breadth-first search over
//! the ordered graph so the report is byte-stable.
//!
//! **R13 `determinism-taint`**: the same propagation with a different site
//! detector — wall-clock reads outside the two sanctioned timing homes,
//! `HashMap`/`HashSet` iteration-order dependence, environment reads other
//! than the sanctioned `LEAD_SIMD_FORCE` probe, and thread-identity
//! (`thread::current`, `ThreadId`, `ptr::hash`) — must not be reachable
//! from result-affecting crates' public APIs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::Diagnostic;
use crate::lex::{self, Token, TokenKind};
use crate::manifest::Manifest;
use crate::rules::{self, Class};
use crate::scan::{FileView, Line};
use crate::workspace;

/// One source file handed to the interprocedural analysis.
pub struct SourceFile<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel: &'a str,
    /// The raw source text (re-tokenized for call-site extraction).
    pub source: &'a str,
    /// The preprocessed view of the same source.
    pub view: &'a FileView,
}

/// The outcome of the interprocedural analysis: the R12/R13 diagnostics plus
/// the waivers those rules consumed, keyed by file, so the per-file waiver
/// hygiene pass can account for them.
pub struct Analysis {
    /// `panic-path` / `determinism-taint` diagnostics, unsorted.
    pub diags: Vec<Diagnostic>,
    /// Per rel path: `(line index, rule)` pairs of satisfied waivers.
    pub used_waivers: BTreeMap<String, Vec<(usize, String)>>,
}

impl Analysis {
    /// The waivers consumed in `rel`, as `(line index, rule)` pairs.
    pub fn used_for(&self, rel: &str) -> &[(usize, String)] {
        self.used_waivers.get(rel).map_or(&[], |v| v.as_slice())
    }
}

/// One extracted call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the called name.
    pub line: usize,
    /// The called identifier (last path segment).
    pub name: String,
    /// The first path segment when the call is path-qualified
    /// (`lead_geo` in `lead_geo::csv::read(…)`, `crate`, a type name, …).
    pub qualifier: Option<String>,
    /// Whether this is a method call (`x.name(…)`).
    pub is_method: bool,
}

/// Identifiers that look like calls but never are.
const NON_CALL_IDENTS: [&str; 30] = [
    "fn", "if", "else", "while", "for", "in", "match", "return", "loop", "break", "continue", "as",
    "let", "mut", "ref", "move", "use", "mod", "pub", "impl", "trait", "struct", "enum", "union",
    "where", "dyn", "unsafe", "extern", "async", "await",
];

fn is_punct(tok: Option<&&Token<'_>>, text: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Extracts every call site from a token stream: an identifier directly
/// followed by `(` (or by a turbofish `::<…>` then `(`). Macro invocations
/// (`name!(…)`) and `fn` definitions are skipped; `x.name(…)` is recorded as
/// a method call; `a::b::name(…)` records `a` as the qualifier.
pub fn extract_calls(tokens: &[Token<'_>]) -> Vec<CallSite> {
    let code: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace
                    | TokenKind::LineComment { .. }
                    | TokenKind::BlockComment { .. }
            )
        })
        .collect();
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident || NON_CALL_IDENTS.contains(&t.text) {
            continue;
        }
        // `fn name(…)` is a definition, not a call.
        if i > 0 && code[i - 1].text == "fn" {
            continue;
        }
        // Step over a turbofish: `name::<T, U>(…)`.
        let mut j = i + 1;
        if is_punct(code.get(j), ":")
            && is_punct(code.get(j + 1), ":")
            && is_punct(code.get(j + 2), "<")
        {
            let mut depth = 0usize;
            let mut k = j + 2;
            let mut closed = None;
            while let Some(tok) = code.get(k) {
                match tok.text {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            closed = Some(k);
                            break;
                        }
                    }
                    ";" | "{" | "}" => break,
                    _ => {}
                }
                k += 1;
            }
            match closed {
                Some(k) => j = k + 1,
                None => continue,
            }
        }
        if !is_punct(code.get(j), "(") {
            continue;
        }
        let is_method = i > 0 && code[i - 1].text == ".";
        let mut qualifier = None;
        if !is_method {
            // Walk back over `seg::`-joined path segments to the root.
            let mut q = i;
            while q >= 3
                && code[q - 1].text == ":"
                && code[q - 2].text == ":"
                && code[q - 3].kind == TokenKind::Ident
            {
                q -= 3;
            }
            if q < i {
                qualifier = Some(code[q].text.to_string());
            }
        }
        out.push(CallSite {
            line: t.line,
            name: t.text.to_string(),
            qualifier,
            is_method,
        });
    }
    out
}

/// Maps each imported leaf identifier to the first segment of its `use`
/// path: `use lead_geo::csv::{read, write as w};` yields
/// `read → lead_geo`, `w → lead_geo`, `csv` not at all (only leaves bind).
pub fn import_leaves(tokens: &[Token<'_>]) -> BTreeMap<String, String> {
    let code: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace
                    | TokenKind::LineComment { .. }
                    | TokenKind::BlockComment { .. }
            )
        })
        .collect();
    let mut map = BTreeMap::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].kind == TokenKind::Ident && code[i].text == "use") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if is_punct(code.get(j), ":") && is_punct(code.get(j + 1), ":") {
            j += 2; // `use ::lead_geo::…` (absolute path)
        }
        let root = match code.get(j) {
            Some(t) if t.kind == TokenKind::Ident => t.text.to_string(),
            _ => {
                i = j;
                continue;
            }
        };
        while let Some(t) = code.get(j) {
            if t.text == ";" {
                break;
            }
            if t.kind == TokenKind::Ident && t.text != "as" && t.text != "self" {
                // A leaf is an identifier not followed by more path.
                let next = code.get(j + 1).map_or(";", |n| n.text);
                if matches!(next, "," | "}" | ";") {
                    map.insert(t.text.to_string(), root.clone());
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    map
}

/// One classified crate participating in the graph.
struct CrateId {
    package: String,
    class: Class,
}

/// The crate owning `rel`, when it is a classifiable library crate: the
/// static table ([`rules::CRATES`]) decides first, then (for fixture
/// workspaces) the manifest's `[package.metadata.lead] class`.
fn crate_of(rel: &str, manifests: &[Manifest]) -> Option<CrateId> {
    if let Some(info) = rules::class_of(rel) {
        return Some(CrateId {
            package: info.package.to_string(),
            class: info.class,
        });
    }
    let m = workspace::manifest_for(rel, manifests)?;
    let class = m.lead_class.as_ref().and_then(|(c, _)| {
        Class::ALL
            .iter()
            .find(|k| k.as_str() == c.as_str())
            .copied()
    })?;
    Some(CrateId {
        package: m.package.clone()?,
        class,
    })
}

/// The transitive non-dev workspace dependency closure of `start` (itself
/// included). Manifests are ground truth; crates without one (single-file
/// scans) fall back to the sanctioned sets in [`rules::CRATES`].
fn reach_of(start: &str, manifests: &[Manifest]) -> BTreeSet<String> {
    let mut seen = BTreeSet::new();
    let mut queue = vec![start.to_string()];
    while let Some(pkg) = queue.pop() {
        if !seen.insert(pkg.clone()) {
            continue;
        }
        if let Some(m) = manifests
            .iter()
            .find(|m| !m.vendored && m.package.as_deref() == Some(pkg.as_str()))
        {
            queue.extend(m.deps.iter().filter(|d| !d.dev).map(|d| d.name.clone()));
        } else if let Some(info) = rules::CRATES.iter().find(|c| c.package == pkg) {
            queue.extend(info.allowed.iter().map(|s| s.to_string()));
        }
    }
    seen
}

/// One `fn` definition node in the call graph.
struct FnNode {
    file: usize,
    crate_idx: usize,
    name: String,
    line: usize,
    col: usize,
    is_pub: bool,
    open: usize,
    close: usize,
}

/// The assembled graph: deterministic nodes, sorted deduplicated edges, and
/// the per-file context needed to anchor diagnostics.
struct Graph {
    nodes: Vec<FnNode>,
    edges: Vec<Vec<usize>>,
    crates: Vec<CrateId>,
}

/// Whether the `fn` keyword at `col` on `code` is `pub` (not `pub(crate)`):
/// the qualifier run directly before it contains a bare `pub` token.
fn decl_is_pub(code: &str, col: usize) -> bool {
    let end = (col.saturating_sub(1)).min(code.len());
    let Some(prefix) = code.get(..end) else {
        return false;
    };
    prefix
        .split_whitespace()
        .rev()
        .take_while(|t| matches!(*t, "pub" | "const" | "unsafe" | "async" | "extern"))
        .any(|t| t == "pub")
}

fn build_graph(files: &[SourceFile<'_>], manifests: &[Manifest]) -> Graph {
    // Crate table: one entry per distinct classifiable lib crate.
    let mut crates: Vec<CrateId> = Vec::new();
    let crate_idx_of = |package: String, class: Class, crates: &mut Vec<CrateId>| {
        if let Some(i) = crates.iter().position(|c| c.package == package) {
            return i;
        }
        crates.push(CrateId { package, class });
        crates.len() - 1
    };

    let mut file_crate: Vec<Option<usize>> = Vec::with_capacity(files.len());
    for f in files {
        let idx = crate_of(f.rel, manifests)
            .filter(|c| matches!(c.class, Class::Lib | Class::ResultLib))
            .map(|c| crate_idx_of(c.package, c.class, &mut crates));
        file_crate.push(idx);
    }

    // Fn nodes from the block IR, deterministic order.
    let mut nodes: Vec<FnNode> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let Some(ci) = file_crate[fi] else { continue };
        for item in &f.view.blocks.items {
            if item.kind != crate::blocks::ItemKind::Fn {
                continue;
            }
            let (Some(name), Some(body)) = (item.name.clone(), item.body) else {
                continue;
            };
            let Some(line) = f.view.lines.get(item.line - 1) else {
                continue;
            };
            if line.in_test {
                continue;
            }
            nodes.push(FnNode {
                file: fi,
                crate_idx: ci,
                name,
                line: item.line,
                col: item.col,
                is_pub: decl_is_pub(&line.code, item.col),
                open: body.open_line,
                close: body.close_line,
            });
        }
    }
    nodes.sort_by(|a, b| (a.file, a.line, a.col).cmp(&(b.file, b.line, b.col)));

    // Lookup structures.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
    }
    let reach: Vec<BTreeSet<String>> = crates
        .iter()
        .map(|c| reach_of(&c.package, manifests))
        .collect();
    let resolve_crate = |ident: &str, own: usize| -> Option<usize> {
        if matches!(ident, "crate" | "self" | "super") {
            return Some(own);
        }
        let dashed = ident.replace('_', "-");
        crates
            .iter()
            .position(|c| c.package == ident || c.package == dashed)
    };

    // Edges: extract and resolve every call per file.
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
    for (fi, f) in files.iter().enumerate() {
        let Some(own) = file_crate[fi] else { continue };
        let tokens = lex::tokenize(f.source);
        let imports = import_leaves(&tokens);
        let owner = line_owners(&nodes, fi, f.view.lines.len());
        for call in extract_calls(&tokens) {
            if f.view.lines.get(call.line - 1).is_none_or(|l| l.in_test) {
                continue;
            }
            let Some(from) = owner.get(call.line).copied().flatten() else {
                continue;
            };
            let in_crate = |k: usize, cands: &[usize]| -> Vec<usize> {
                cands
                    .iter()
                    .copied()
                    .filter(|&n| nodes[n].crate_idx == k)
                    .collect()
            };
            let cands = by_name.get(call.name.as_str()).map_or(&[][..], |v| v);
            let targets: Vec<usize> = if let Some(q) = call
                .qualifier
                .as_ref()
                .map(|q| imports.get(q).unwrap_or(q))
                .and_then(|root| resolve_crate(root, own))
            {
                // Rule 1: path rooted in a workspace crate (or an alias).
                in_crate(q, cands)
            } else if call.qualifier.is_none() && !call.is_method {
                // Rule 2: same-file name match wins.
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&n| nodes[n].file == fi)
                    .collect();
                if !same_file.is_empty() {
                    same_file
                } else if let Some(k) = imports
                    .get(call.name.as_str())
                    .and_then(|root| resolve_crate(root, own))
                {
                    // Rule 3: the name itself was imported.
                    in_crate(k, cands)
                } else {
                    unique_in_reach(&nodes, cands, &reach[own], &crates)
                }
            } else {
                // Rule 4: methods and type-qualified paths.
                unique_in_reach(&nodes, cands, &reach[own], &crates)
            };
            for t in targets {
                if t != from {
                    edges[from].insert(t);
                }
            }
        }
    }

    Graph {
        nodes,
        edges: edges.into_iter().map(|s| s.into_iter().collect()).collect(),
        crates,
    }
}

/// The candidates in the reachable crate set — kept only when unambiguous.
fn unique_in_reach(
    nodes: &[FnNode],
    cands: &[usize],
    reach: &BTreeSet<String>,
    crates: &[CrateId],
) -> Vec<usize> {
    let hits: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&n| reach.contains(&crates[nodes[n].crate_idx].package))
        .collect();
    if hits.len() == 1 {
        hits
    } else {
        Vec::new() // ambiguous or unknown: opaque
    }
}

/// For one file, maps each 1-based line to its innermost enclosing `fn`
/// node, so call sites and panic/taint sites attribute to the right node.
fn line_owners(nodes: &[FnNode], file: usize, nlines: usize) -> Vec<Option<usize>> {
    let mut owner: Vec<Option<usize>> = vec![None; nlines + 1];
    for (i, n) in nodes.iter().enumerate() {
        if n.file != file {
            continue;
        }
        for ln in n.open..=n.close.min(nlines) {
            match owner[ln] {
                Some(o) if nodes[o].open >= n.open => {}
                _ => owner[ln] = Some(i),
            }
        }
    }
    owner
}

/// A rule-specific site found inside a function body.
struct Site {
    line: usize,
    what: String,
}

/// Runs the interprocedural analysis over `files` and returns the R12/R13
/// diagnostics plus the waivers they consumed. Pass the workspace manifests
/// when scanning a whole tree; an empty slice falls back to the static
/// classification table (single-file fixture scans).
pub fn analyze(files: &[SourceFile<'_>], manifests: &[Manifest]) -> Analysis {
    let graph = build_graph(files, manifests);
    let mut analysis = Analysis {
        diags: Vec::new(),
        used_waivers: BTreeMap::new(),
    };
    run_rule(
        "panic-path",
        files,
        &graph,
        &mut analysis,
        |_, line| {
            if rules::find_word(&line.code, "debug_assert").is_some() {
                return None;
            }
            rules::panic_sites(&line.code)
                .into_iter()
                .next()
                .map(|s| s.what)
        },
        |entry, path, file, line, what| {
            format!(
                "`pub fn {entry}` can reach a panic site: {path}: panics at \
                 {file}:{line} ({what}) — public APIs of result-affecting crates \
                 must be panic-free end to end (R12); return a typed error, or \
                 waive a step with `// lint: allow(panic-path): <reason>`"
            )
        },
    );
    run_rule(
        "determinism-taint",
        files,
        &graph,
        &mut analysis,
        taint_site,
        |entry, path, file, line, what| {
            format!(
                "`pub fn {entry}` can reach a nondeterminism source: {path}: \
                 tainted at {file}:{line} ({what}) — results must not depend on \
                 wall clocks, hash iteration order, the environment, or thread \
                 identity (R13); thread a deterministic input through, or waive \
                 a step with `// lint: allow(determinism-taint): <reason>`"
            )
        },
    );
    analysis
}

/// The R13 site detector over one code line.
fn taint_site(rel: &str, line: &Line) -> Option<String> {
    let code = line.code.as_str();
    if !rules::is_timing_file(rel) {
        for pat in ["Instant", "SystemTime"] {
            if rules::find_word(code, pat).is_some() {
                return Some(format!("`{pat}` wall-clock read"));
            }
        }
    }
    for pat in ["HashMap", "HashSet"] {
        if rules::find_word(code, pat).is_some() {
            return Some(format!("`{pat}` iteration order"));
        }
    }
    if code.contains("env::var") && !line.raw.contains("LEAD_SIMD_FORCE") {
        return Some("`env::var` read".to_string());
    }
    for pat in ["thread::current", "ptr::hash"] {
        if code.contains(pat) {
            return Some(format!("`{pat}`"));
        }
    }
    if rules::find_word(code, "ThreadId").is_some() {
        return Some("`ThreadId`".to_string());
    }
    None
}

/// Runs one propagation rule (`panic-path` or `determinism-taint`) over the
/// assembled graph.
fn run_rule(
    rule: &'static str,
    files: &[SourceFile<'_>],
    graph: &Graph,
    analysis: &mut Analysis,
    detect: impl Fn(&str, &Line) -> Option<String>,
    message: impl Fn(&str, &str, &str, usize, &str) -> String,
) {
    let nodes = &graph.nodes;
    let mut sites: Vec<Option<Site>> = (0..nodes.len()).map(|_| None).collect();
    let mut certified = vec![false; nodes.len()];
    let mut used: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();

    // Local sites and per-site waivers, file by file.
    let mut by_file: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_file.entry(n.file).or_default().push(i);
    }
    for (&fi, members) in &by_file {
        let f = &files[fi];
        let lines = f.view.lines.as_slice();
        let owner = line_owners(nodes, fi, lines.len());
        for &ni in members {
            let n = &nodes[ni];
            // A waiver on the declaration line certifies the whole fn.
            if let Some(w) = rules::waiver_for(lines, n.line - 1, rule) {
                certified[ni] = true;
                // Usage is decided later, once reachability is known.
                let _ = w;
            }
            for ln in n.open..=n.close.min(lines.len()) {
                if owner[ln] != Some(ni) {
                    continue; // owned by a nested fn
                }
                let line = &lines[ln - 1];
                if line.in_test {
                    continue;
                }
                let Some(what) = detect(f.rel, line) else {
                    continue;
                };
                if let Some(w) = rules::waiver_for(lines, ln - 1, rule) {
                    used.entry(f.rel.to_string()).or_default().push(w);
                } else if sites[ni].is_none() {
                    sites[ni] = Some(Site { line: ln, what });
                }
            }
        }
    }

    // Decide declaration-waiver usage: the waiver is consumed iff the fn
    // could otherwise reach a site (through certified nodes too — the
    // unrestricted graph decides what the waiver actually suppresses).
    let unblocked = vec![false; nodes.len()];
    for (ni, n) in nodes.iter().enumerate() {
        if !certified[ni] {
            continue;
        }
        if witness(ni, &graph.edges, &sites, &unblocked).is_some() {
            if let Some(w) =
                rules::waiver_for(files[n.file].view.lines.as_slice(), n.line - 1, rule)
            {
                used.entry(files[n.file].rel.to_string())
                    .or_default()
                    .push(w);
            }
        }
    }

    // Entries: every pub fn of a result-affecting crate.
    for (ni, n) in nodes.iter().enumerate() {
        if !n.is_pub || certified[ni] || graph.crates[n.crate_idx].class != Class::ResultLib {
            continue;
        }
        let Some(path) = witness(ni, &graph.edges, &sites, &certified) else {
            continue;
        };
        let last = *path.last().expect("witness paths are non-empty");
        let site = sites[last].as_ref().expect("witness ends at a site");
        let names: Vec<&str> = path.iter().map(|&p| nodes[p].name.as_str()).collect();
        let f = &files[n.file];
        let decl = &f.view.lines[n.line - 1];
        analysis.diags.push(Diagnostic {
            file: f.rel.to_string(),
            line: n.line,
            col: n.col,
            rule,
            message: message(
                &n.name,
                &names.join(" → "),
                files[nodes[last].file].rel,
                site.line,
                &site.what,
            ),
            snippet: decl.raw.clone(),
        });
    }

    for (rel, mut ws) in used {
        analysis
            .used_waivers
            .entry(rel)
            .or_default()
            .append(&mut ws);
    }
}

/// Breadth-first search from `start` to the nearest node carrying a local
/// site, never expanding blocked (certified) nodes. Neighbor order follows
/// the sorted edge lists, so the returned path is deterministic.
fn witness(
    start: usize,
    edges: &[Vec<usize>],
    sites: &[Option<Site>],
    blocked: &[bool],
) -> Option<Vec<usize>> {
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen = vec![false; edges.len()];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(m) = queue.pop_front() {
        if sites[m].is_some() {
            let mut path = vec![m];
            let mut cur = m;
            while cur != start {
                cur = prev[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &s in &edges[m] {
            if !seen[s] && !blocked[s] {
                seen[s] = true;
                prev.insert(s, m);
                queue.push_back(s);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calls(src: &str) -> Vec<CallSite> {
        extract_calls(&lex::tokenize(src))
    }

    #[test]
    fn plain_method_and_path_calls_are_classified() {
        let got = calls("fn f() { helper(); x.merge(y); lead_geo::csv::read(p); }\n");
        assert_eq!(got.len(), 3, "{got:?}");
        assert_eq!((got[0].name.as_str(), got[0].is_method), ("helper", false));
        assert!(got[0].qualifier.is_none());
        assert_eq!((got[1].name.as_str(), got[1].is_method), ("merge", true));
        assert_eq!(got[2].qualifier.as_deref(), Some("lead_geo"));
        assert_eq!(got[2].name, "read");
    }

    #[test]
    fn macros_definitions_and_keywords_are_not_calls() {
        let got = calls("fn f(x: u32) { println!(\"{x}\"); if (x > 0) { return (); } }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn turbofish_calls_resolve_to_the_base_name() {
        let got = calls("fn f(s: &str) { s.parse::<i32>(); collect::<Vec<_>>(it); }\n");
        let names: Vec<&str> = got.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["parse", "collect"], "{got:?}");
        assert!(got[0].is_method);
        assert!(!got[1].is_method);
    }

    #[test]
    fn calls_in_strings_and_comments_are_invisible() {
        let got = calls("fn f() -> &'static str { \"helper()\" } // helper()\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn import_leaves_bind_leaves_to_the_path_root() {
        let map = import_leaves(&lex::tokenize(
            "use lead_geo::csv;\nuse lead_nn::{par, num as n};\nuse crate::detect;\nuse lead_geo::prelude::*;\n",
        ));
        assert_eq!(map.get("csv").map(String::as_str), Some("lead_geo"));
        assert_eq!(map.get("par").map(String::as_str), Some("lead_nn"));
        assert_eq!(map.get("n").map(String::as_str), Some("lead_nn"));
        assert_eq!(map.get("detect").map(String::as_str), Some("crate"));
        assert!(!map.contains_key("prelude"), "globs bind nothing: {map:?}");
        assert!(!map.contains_key("num"), "`as` rebinds the leaf: {map:?}");
    }

    #[test]
    fn pub_detection_distinguishes_restricted_visibility() {
        assert!(decl_is_pub("pub fn f()", 5));
        assert!(decl_is_pub("    pub const fn f()", 15));
        assert!(decl_is_pub("pub unsafe fn f()", 12));
        assert!(!decl_is_pub("fn f()", 1));
        assert!(!decl_is_pub("pub(crate) fn f()", 12));
        assert!(!decl_is_pub("pub(super) fn f()", 12));
    }
}
