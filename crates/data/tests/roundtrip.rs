//! Property-based round-trip guarantees of the binary container format.
//!
//! The format's core promise is *bitwise* fidelity: whatever coordinate bit
//! patterns go in (grid-aligned or not) come back out identical, and a
//! CSV → binary → CSV conversion of conforming CSV is byte-exact.

use lead_data::records::{
    LabeledSampleReader, LabeledSampleRecord, LabeledSampleWriter, TrajectoryReader,
    TrajectoryWriter,
};
use lead_geo::csv::{write_trajectories, CsvReader};
use lead_geo::{GpsPoint, Trajectory};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::Cursor;

/// A strictly increasing timestamp sequence from positive deltas.
fn times(deltas: &[i64], start: i64) -> Vec<i64> {
    let mut t = start;
    deltas
        .iter()
        .map(|d| {
            t += d.max(&1);
            t
        })
        .collect()
}

/// Grid-aligned coordinates: exactly representable at 1e-7°, the shape real
/// GPS feeds have. Units are 1e-7 degrees.
fn grid_points(lat_units: &[i64], lng_units: &[i64], deltas: &[i64], start: i64) -> Vec<GpsPoint> {
    let ts = times(deltas, start);
    lat_units
        .iter()
        .zip(lng_units)
        .zip(&ts)
        .map(|((la, ln), t)| GpsPoint::new(*la as f64 / 1e7, *ln as f64 / 1e7, *t))
        .collect()
}

/// Arbitrary in-range coordinates: generally NOT on the grid, forcing the
/// raw-f64 fallback mode.
fn raw_points(lats: &[f64], lngs: &[f64], deltas: &[i64], start: i64) -> Vec<GpsPoint> {
    let ts = times(deltas, start);
    lats.iter()
        .zip(lngs)
        .zip(&ts)
        .map(|((la, ln), t)| GpsPoint::new(*la, *ln, *t))
        .collect()
}

fn assert_bitwise_eq(a: &Trajectory, b: &Trajectory) {
    assert_eq!(a.points().len(), b.points().len());
    for (p, q) in a.points().iter().zip(b.points()) {
        assert_eq!(p.lat.to_bits(), q.lat.to_bits());
        assert_eq!(p.lng.to_bits(), q.lng.to_bits());
        assert_eq!(p.t, q.t);
    }
}

fn binary_round_trip(items: &[(u32, Trajectory)]) -> Vec<(u32, Trajectory)> {
    let mut w = TrajectoryWriter::new(Cursor::new(Vec::new())).expect("header");
    for (id, tr) in items {
        w.write(*id, tr).expect("encode");
    }
    let bytes = w.finish().expect("finish").into_inner();
    let mut r = TrajectoryReader::new(Cursor::new(&bytes)).expect("open");
    assert_eq!(r.count(), items.len() as u64);
    let mut out = Vec::new();
    while let Some(item) = r.next_record().expect("decode") {
        out.push(item);
    }
    out
}

proptest! {
    /// Grid-aligned trajectories (fixed-point mode) survive bitwise.
    #[test]
    fn grid_trajectories_round_trip_bitwise(
        lat_units in vec(-900_000_000i64..900_000_001, 1..40),
        lng_units in vec(-1_800_000_000i64..1_800_000_001, 40),
        deltas in vec(1i64..10_001, 40),
        start in -1_000_000i64..1_000_001,
        id in any::<u32>(),
    ) {
        let n = lat_units.len();
        let tr = Trajectory::new(grid_points(&lat_units, &lng_units[..n], &deltas[..n], start));
        let back = binary_round_trip(&[(id, tr.clone())]);
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(back[0].0, id);
        assert_bitwise_eq(&tr, &back[0].1);
    }

    /// Off-grid trajectories (raw-f64 fallback) survive bitwise too.
    #[test]
    fn raw_trajectories_round_trip_bitwise(
        lats in vec(-89.999f64..89.999, 1..40),
        lngs in vec(-179.999f64..179.999, 40),
        deltas in vec(1i64..10_001, 40),
        start in -1_000_000i64..1_000_001,
        id in any::<u32>(),
    ) {
        let n = lats.len();
        let tr = Trajectory::new(raw_points(&lats, &lngs[..n], &deltas[..n], start));
        let back = binary_round_trip(&[(id, tr.clone())]);
        prop_assert_eq!(back.len(), 1);
        assert_bitwise_eq(&tr, &back[0].1);
    }

    /// A mixed multi-record container preserves record order and contents.
    #[test]
    fn mixed_containers_preserve_order(
        seeds in vec((any::<u32>(), 1i64..501, 1usize..20), 1..8),
    ) {
        let items: Vec<(u32, Trajectory)> = seeds
            .iter()
            .enumerate()
            .map(|(k, (id, dt, n))| {
                // Alternate grid-aligned and off-grid records.
                let deltas = vec![*dt; *n];
                let points = if k % 2 == 0 {
                    let lu: Vec<i64> = (0..*n).map(|i| 310_000_000 + (i as i64) * 97).collect();
                    let gu: Vec<i64> = (0..*n).map(|i| 1_210_000_000 + (i as i64) * 53).collect();
                    grid_points(&lu, &gu, &deltas, 0)
                } else {
                    let la: Vec<f64> = (0..*n).map(|i| 31.0 + (i as f64) * 1e-5 + 1e-9).collect();
                    let lg: Vec<f64> = (0..*n).map(|i| 121.0 + (i as f64) * 1e-5 + 1e-9).collect();
                    raw_points(&la, &lg, &deltas, 0)
                };
                (*id, Trajectory::new(points))
            })
            .collect();
        let back = binary_round_trip(&items);
        prop_assert_eq!(back.len(), items.len());
        for ((id_a, tr_a), (id_b, tr_b)) in items.iter().zip(&back) {
            prop_assert_eq!(id_a, id_b);
            assert_bitwise_eq(tr_a, tr_b);
        }
    }

    /// CSV → binary → CSV is byte-exact for grid-aligned data: the CSV's
    /// `%.7f` text, the parsed f64, and the fixed-point encoding are all the
    /// same value.
    #[test]
    fn csv_binary_csv_is_byte_exact(
        trucks in vec((0u32..1000, 1usize..30, 1i64..5_001), 1..6),
    ) {
        let items: Vec<(u32, Trajectory)> = trucks
            .iter()
            .enumerate()
            .map(|(k, (id, n, dt))| {
                let lu: Vec<i64> = (0..*n).map(|i| -300_000_000 + (i as i64) * 1_111).collect();
                let gu: Vec<i64> = (0..*n).map(|i| 700_000_000 + (i as i64) * 2_222).collect();
                let deltas = vec![*dt; *n];
                // Strictly increasing truck ids so the CSV reader keeps
                // the trajectory boundaries distinct.
                ((k as u32) * 1_000 + *id, Trajectory::new(grid_points(&lu, &gu, &deltas, 0)))
            })
            .collect();
        let refs: Vec<(u32, &Trajectory)> = items.iter().map(|(id, t)| (*id, t)).collect();
        let mut csv1 = Vec::new();
        write_trajectories(&refs, &mut csv1).expect("render csv");

        let parsed: Vec<(u32, Trajectory)> = CsvReader::new(csv1.as_slice())
            .expect("open csv")
            .collect::<Result<_, _>>()
            .expect("parse csv");
        let back = binary_round_trip(&parsed);

        let back_refs: Vec<(u32, &Trajectory)> = back.iter().map(|(id, t)| (*id, t)).collect();
        let mut csv2 = Vec::new();
        write_trajectories(&back_refs, &mut csv2).expect("render csv again");
        prop_assert_eq!(csv1, csv2);
    }

    /// Labelled samples round-trip every field, trajectory bits included.
    #[test]
    fn labeled_samples_round_trip(
        truck_id in any::<u32>(),
        day in 0u32..10_000,
        planned in 0u32..64,
        t0 in 0i64..86_401,
        gaps in vec(1i64..3_601, 3),
        n in 1usize..30,
        dt in 1i64..601,
    ) {
        let lu: Vec<i64> = (0..n).map(|i| 318_000_000 + (i as i64) * 701).collect();
        let gu: Vec<i64> = (0..n).map(|i| 1_207_000_000 + (i as i64) * 907).collect();
        let deltas = vec![dt; n];
        let rec = LabeledSampleRecord {
            truck_id,
            day,
            planned_stays: planned,
            truth_s: [t0, t0 + gaps[0], t0 + gaps[0] + gaps[1], t0 + gaps[0] + gaps[1] + gaps[2]],
            trajectory: Trajectory::new(grid_points(&lu, &gu, &deltas, 0)),
        };
        let mut w = LabeledSampleWriter::new(Cursor::new(Vec::new())).expect("header");
        w.write(&rec).expect("encode");
        let bytes = w.finish().expect("finish").into_inner();
        let mut r = LabeledSampleReader::new(Cursor::new(&bytes)).expect("open");
        let back = r.next_record().expect("decode").expect("one record");
        prop_assert!(r.next_record().expect("end").is_none());
        prop_assert_eq!(back.truck_id, rec.truck_id);
        prop_assert_eq!(back.day, rec.day);
        prop_assert_eq!(back.planned_stays, rec.planned_stays);
        prop_assert_eq!(back.truth_s, rec.truth_s);
        assert_bitwise_eq(&rec.trajectory, &back.trajectory);
    }
}
