//! The corruption matrix: every [`DataError`] variant is reachable from a
//! concrete corrupted byte stream, and none of them panics.
//!
//! Containers are built valid, then surgically damaged (header fields,
//! frame fields, payload bytes, end marker) or hand-crafted with
//! checksum-valid but structurally invalid payloads — the case checksums
//! alone cannot catch.

use lead_data::codec::{write_f64, write_u32, write_varint, write_varint_i64};
use lead_data::records::{LabeledSampleReader, TrajectoryReader, TrajectoryWriter};
use lead_data::source::BinaryTrajectoryShards;
use lead_data::{ContainerWriter, DataError, MalformedKind, RecordKind, MAX_RECORD_LEN};
use lead_geo::{GpsPoint, Trajectory};
use std::io::Cursor;

/// A small valid two-record trajectory container.
fn valid_container() -> Vec<u8> {
    let tr = |base: i64| {
        Trajectory::new(
            (0..5)
                .map(|i| {
                    GpsPoint::new(
                        (310_000_000 + base + i * 100) as f64 / 1e7,
                        (1_210_000_000 + base + i * 200) as f64 / 1e7,
                        base + i * 30,
                    )
                })
                .collect(),
        )
    };
    let mut w = TrajectoryWriter::new(Cursor::new(Vec::new())).expect("header");
    w.write(7, &tr(0)).expect("record 0");
    w.write(8, &tr(10_000)).expect("record 1");
    w.finish().expect("finish").into_inner()
}

/// Reads the whole container, returning the first error (or panicking if
/// the stream is unexpectedly clean).
fn read_all(bytes: &[u8]) -> DataError {
    let mut r = match TrajectoryReader::new(Cursor::new(bytes)) {
        Ok(r) => r,
        Err(e) => return e,
    };
    loop {
        match r.next_record() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("corrupted container read cleanly"),
            Err(e) => return e,
        }
    }
}

/// Builds a container whose single record has the given raw payload —
/// checksum-valid by construction, so only structural validation can
/// reject it.
fn container_with_payload(payload: &[u8]) -> Vec<u8> {
    let mut w =
        ContainerWriter::new(Cursor::new(Vec::new()), RecordKind::Trajectories).expect("header");
    w.write_record(payload).expect("record");
    w.finish().expect("finish").into_inner()
}

fn expect_malformed(bytes: &[u8], want: MalformedKind) {
    match read_all(bytes) {
        DataError::Malformed { record: 0, kind } => {
            assert_eq!(
                std::mem::discriminant(&kind),
                std::mem::discriminant(&want),
                "wanted {want:?}, got {kind:?}"
            );
        }
        other => panic!("wanted Malformed({want:?}), got {other:?}"),
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = valid_container();
    bytes[0] ^= 0xFF;
    match read_all(&bytes) {
        DataError::BadMagic { .. } => {}
        other => panic!("wanted BadMagic, got {other:?}"),
    }
}

#[test]
fn version_skew_is_typed() {
    let mut bytes = valid_container();
    bytes[8] = 99; // version field, little-endian low byte
    match read_all(&bytes) {
        DataError::UnsupportedVersion { found: 99 } => {}
        other => panic!("wanted UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn unknown_kind_is_typed() {
    let mut bytes = valid_container();
    bytes[10] = 250; // kind tag, little-endian low byte
    match read_all(&bytes) {
        DataError::UnknownKind { found: 250 } => {}
        other => panic!("wanted UnknownKind, got {other:?}"),
    }
}

#[test]
fn wrong_kind_is_typed() {
    let bytes = valid_container();
    match LabeledSampleReader::new(Cursor::new(&bytes)) {
        Err(DataError::WrongKind { expected, found }) => {
            assert_eq!(expected, RecordKind::LabeledSamples);
            assert_eq!(found, RecordKind::Trajectories);
        }
        Ok(_) => panic!("trajectory container opened as labelled samples"),
        Err(other) => panic!("wanted WrongKind, got {other:?}"),
    }
}

#[test]
fn truncation_is_typed_at_every_boundary() {
    let bytes = valid_container();
    // Mid-header, mid-first-frame, mid-first-payload, mid-second-record:
    // every cut must surface Truncated (or MissingEndMarker at the tail),
    // never a panic.
    for cut in [4, 10, 19, 25, 40, bytes.len() - 5] {
        match read_all(&bytes[..cut]) {
            DataError::Truncated { .. } | DataError::MissingEndMarker => {}
            other => panic!("cut at {cut}: wanted Truncated, got {other:?}"),
        }
    }
}

#[test]
fn missing_end_marker_is_typed() {
    let mut bytes = valid_container();
    let n = bytes.len();
    bytes[n - 2] ^= 0xFF; // damage the "LEND" marker itself
    match read_all(&bytes) {
        DataError::MissingEndMarker => {}
        other => panic!("wanted MissingEndMarker, got {other:?}"),
    }
}

#[test]
fn oversized_record_is_typed() {
    let mut bytes = valid_container();
    // First frame's length field (offset 20), set far past MAX_RECORD_LEN.
    bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
    match read_all(&bytes) {
        DataError::OversizedRecord { record: 0, len } => {
            assert!(len > MAX_RECORD_LEN);
        }
        other => panic!("wanted OversizedRecord, got {other:?}"),
    }
}

#[test]
fn checksum_mismatch_is_typed_and_attributed() {
    // Flip one payload byte in each record in turn; the error must name the
    // record it was found in.
    for (record, offset_in_payload) in [(0u64, 3usize), (1u64, 2usize)] {
        let bytes = valid_container();
        // Walk the frames to find the record's payload offset.
        let mut pos = 20usize;
        for _ in 0..record {
            let len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len field")) as usize;
            pos += 12 + len;
        }
        let mut damaged = bytes;
        damaged[pos + 12 + offset_in_payload] ^= 0xFF;
        match read_all(&damaged) {
            DataError::ChecksumMismatch {
                record: r,
                stored,
                computed,
            } => {
                assert_eq!(r, record);
                assert_ne!(stored, computed);
            }
            other => panic!("wanted ChecksumMismatch at record {record}, got {other:?}"),
        }
    }
}

#[test]
fn bad_mode_is_typed() {
    let mut payload = Vec::new();
    write_u32(&mut payload, 1); // truck_id
    write_varint(&mut payload, 1); // one point
    payload.push(7); // invalid mode byte
    write_varint_i64(&mut payload, 100);
    expect_malformed(&container_with_payload(&payload), MalformedKind::BadMode(7));
}

#[test]
fn truncated_payload_is_typed() {
    // Declares one point but ends right after the mode byte.
    let mut payload = Vec::new();
    write_u32(&mut payload, 1);
    write_varint(&mut payload, 1);
    payload.push(0); // MODE_RAW
    expect_malformed(
        &container_with_payload(&payload),
        MalformedKind::TruncatedPayload,
    );
}

#[test]
fn varint_overflow_is_typed() {
    // An 11-byte varint cannot fit in 64 bits.
    let mut payload = Vec::new();
    write_u32(&mut payload, 1);
    payload.extend_from_slice(&[0xFF; 11]);
    expect_malformed(
        &container_with_payload(&payload),
        MalformedKind::VarintOverflow,
    );
}

#[test]
fn non_chronological_points_are_typed() {
    // Two points with dt = 0 for the second: timestamps must strictly
    // increase.
    let mut payload = Vec::new();
    write_u32(&mut payload, 1);
    write_varint(&mut payload, 2);
    payload.push(0); // MODE_RAW
    write_varint_i64(&mut payload, 100); // t0 = 100
    write_f64(&mut payload, 31.0);
    write_f64(&mut payload, 121.0);
    write_varint_i64(&mut payload, 0); // t1 = 100 — not after t0
    write_f64(&mut payload, 31.0);
    write_f64(&mut payload, 121.0);
    expect_malformed(
        &container_with_payload(&payload),
        MalformedKind::NonChronological,
    );
}

#[test]
fn out_of_range_coordinates_are_typed() {
    let mut payload = Vec::new();
    write_u32(&mut payload, 1);
    write_varint(&mut payload, 1);
    payload.push(0); // MODE_RAW
    write_varint_i64(&mut payload, 100);
    write_f64(&mut payload, 91.0); // latitude past the pole
    write_f64(&mut payload, 121.0);
    expect_malformed(
        &container_with_payload(&payload),
        MalformedKind::CoordinateRange,
    );
}

#[test]
fn length_overflow_is_typed() {
    // Declares more points than the payload could possibly hold.
    let mut payload = Vec::new();
    write_u32(&mut payload, 1);
    write_varint(&mut payload, 1_000_000);
    payload.push(0);
    expect_malformed(
        &container_with_payload(&payload),
        MalformedKind::LengthOverflow,
    );
}

#[test]
fn trailing_payload_is_typed() {
    // A valid one-point record with one junk byte appended (the frame
    // checksum covers it, so only structural validation can object).
    let mut payload = Vec::new();
    write_u32(&mut payload, 1);
    write_varint(&mut payload, 1);
    payload.push(0); // MODE_RAW
    write_varint_i64(&mut payload, 100);
    write_f64(&mut payload, 31.0);
    write_f64(&mut payload, 121.0);
    payload.push(0xAB);
    expect_malformed(
        &container_with_payload(&payload),
        MalformedKind::TrailingPayload,
    );
}

#[test]
fn truth_order_violation_is_typed() {
    // load_end == load_start: truth boundaries must strictly increase.
    let mut payload = Vec::new();
    write_u32(&mut payload, 1); // truck_id
    write_u32(&mut payload, 0); // day
    write_varint(&mut payload, 0); // planned_stays
    write_varint_i64(&mut payload, 1_000); // load_start
    write_varint_i64(&mut payload, 0); // delta to load_end: zero
    write_varint_i64(&mut payload, 10);
    write_varint_i64(&mut payload, 10);
    write_varint(&mut payload, 0); // no points
    payload.push(1); // MODE_FIXED
    let mut w =
        ContainerWriter::new(Cursor::new(Vec::new()), RecordKind::LabeledSamples).expect("header");
    w.write_record(&payload).expect("record");
    let bytes = w.finish().expect("finish").into_inner();
    let mut r = LabeledSampleReader::new(Cursor::new(&bytes)).expect("open");
    match r.next_record() {
        Err(DataError::Malformed {
            record: 0,
            kind: MalformedKind::TruthOrder,
        }) => {}
        other => panic!("wanted Malformed(TruthOrder), got {other:?}"),
    }
}

#[test]
fn shard_set_surfaces_corruption_from_the_damaged_shard() {
    let dir = std::env::temp_dir().join("lead-data-corruption-shards");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let good = dir.join("good.leadbin");
    let bad = dir.join("bad.leadbin");
    std::fs::write(&good, valid_container()).expect("write good");
    let mut damaged = valid_container();
    damaged[40] ^= 0xFF;
    std::fs::write(&bad, damaged).expect("write bad");

    let mut shards = BinaryTrajectoryShards::open(&[&good, &bad]).expect("headers are intact");
    assert_eq!(shards.len_hint(), Some(4));

    use lead_data::TrajectorySource;
    let mut count = 0usize;
    shards
        .read_shard(0, &mut |_, _| count += 1)
        .expect("good shard reads");
    assert_eq!(count, 2);
    match shards.read_shard(1, &mut |_, _| {}) {
        Err(DataError::ChecksumMismatch { .. }) => {}
        other => panic!("wanted ChecksumMismatch from damaged shard, got {other:?}"),
    }
    match shards.read_shard(2, &mut |_, _| {}) {
        Err(DataError::NoSuchShard {
            shard: 2,
            shards: 2,
        }) => {}
        other => panic!("wanted NoSuchShard, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
