//! Versioned, checksummed binary containers and streaming sources for LEAD.
//!
//! CSV ingestion and in-RAM `Vec` datasets cap the scale the pipeline can
//! train on. This crate provides the `datafmt`/`dataload` split: a compact
//! binary container format (magic + version + kind header, per-record FNV-1a
//! checksums, explicit end marker) holding raw trajectories, labelled
//! training samples, POI databases, and feature tensors, plus the
//! [`TrajectorySource`] trait that lets the in-RAM path, the CSV reader, and
//! binary shard files feed consumers through one streaming, shardable API.
//!
//! Coordinates and timestamps are delta-encoded; latitude/longitude use a
//! fixed-point 1e-7-degree grid *only when the round-trip is provably exact
//! for every point in the record* (checked bitwise at encode time), falling
//! back to raw IEEE-754 bits otherwise. Decoding therefore always
//! reconstructs the original `f64` bit patterns.
//!
//! All failures surface as the typed [`DataError`]; nothing in this crate
//! panics on malformed input.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod container;
pub mod error;
pub mod records;
pub mod source;

pub use container::{ContainerReader, ContainerWriter, MAGIC, MAX_RECORD_LEN, VERSION};
pub use error::{DataError, MalformedKind, RecordKind};
pub use records::{
    LabeledSampleReader, LabeledSampleRecord, LabeledSampleWriter, PoiReader, PoiRecord, PoiWriter,
    TensorReader, TensorRecord, TensorWriter, TrajectoryReader, TrajectoryWriter,
};
pub use source::{BinaryTrajectoryShards, CsvTrajectoryFile, TrajectorySource, VecTrajectories};
