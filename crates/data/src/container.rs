//! The container layer: header, record frames, checksums, end marker.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "LEADDATA"
//! 8       2     format version (currently 1)
//! 10      2     record-kind tag (RecordKind::tag)
//! 12      8     record count (patched by ContainerWriter::finish)
//! 20      ...   count x record frame
//! end-4   4     end marker "LEND"
//! ```
//!
//! Each record frame is `len: u32 | checksum: u64 | payload: len bytes`,
//! where `checksum` is the FNV-1a hash of the payload. The frame layer knows
//! nothing about payload contents; structural validation lives in
//! [`crate::records`].

use crate::codec::fnv1a;
use crate::error::{DataError, RecordKind};
use std::io::{Read, Seek, SeekFrom, Write};

/// The eight magic bytes every container file starts with.
pub const MAGIC: [u8; 8] = *b"LEADDATA";

/// The format version this build reads and writes.
pub const VERSION: u16 = 1;

/// The four end-marker bytes following the last record.
pub const END_MARKER: [u8; 4] = *b"LEND";

/// Upper bound on a single record's payload length: a corrupted length
/// field must not drive a multi-gigabyte allocation.
pub const MAX_RECORD_LEN: u64 = 1 << 30;

/// Byte offset of the record-count field (patched on finish).
const COUNT_OFFSET: u64 = 12;

/// Writes a container file record by record.
///
/// The writer needs `Seek` because the header's record count is a
/// placeholder until [`ContainerWriter::finish`] patches it — this keeps
/// writing single-pass for producers that do not know their count up front.
#[derive(Debug)]
pub struct ContainerWriter<W: Write + Seek> {
    w: W,
    count: u64,
}

impl<W: Write + Seek> ContainerWriter<W> {
    /// Starts a container of the given kind, writing the header immediately.
    ///
    /// # Errors
    ///
    /// [`DataError::Io`] when the header cannot be written.
    pub fn new(mut w: W, kind: RecordKind) -> Result<Self, DataError> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&kind.tag().to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        Ok(Self { w, count: 0 })
    }

    /// Appends one record frame (length, FNV-1a checksum, payload).
    ///
    /// # Errors
    ///
    /// [`DataError::OversizedRecord`] when `payload` exceeds
    /// [`MAX_RECORD_LEN`]; [`DataError::Io`] on write failure.
    pub fn write_record(&mut self, payload: &[u8]) -> Result<(), DataError> {
        let len = payload.len() as u64;
        if len > MAX_RECORD_LEN {
            return Err(DataError::OversizedRecord {
                record: self.count,
                len,
            });
        }
        self.w.write_all(&(len as u32).to_le_bytes())?;
        self.w.write_all(&fnv1a(payload).to_le_bytes())?;
        self.w.write_all(payload)?;
        self.count += 1;
        Ok(())
    }

    /// How many records have been written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Writes the end marker, patches the header's record count, and
    /// returns the underlying writer (flushed).
    ///
    /// # Errors
    ///
    /// [`DataError::Io`] on write, seek, or flush failure.
    pub fn finish(mut self) -> Result<W, DataError> {
        self.w.write_all(&END_MARKER)?;
        self.w.seek(SeekFrom::Start(COUNT_OFFSET))?;
        self.w.write_all(&self.count.to_le_bytes())?;
        self.w.seek(SeekFrom::End(0))?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Reads a container file sequentially, verifying header, per-record
/// checksums, and the end marker.
#[derive(Debug)]
pub struct ContainerReader<R: Read> {
    r: R,
    count: u64,
    next: u64,
    end_verified: bool,
    buf: Vec<u8>,
}

impl<R: Read> ContainerReader<R> {
    /// Opens a container, validating magic, version, and kind.
    ///
    /// # Errors
    ///
    /// [`DataError::Truncated`] when the header is incomplete,
    /// [`DataError::BadMagic`] / [`DataError::UnsupportedVersion`] /
    /// [`DataError::UnknownKind`] / [`DataError::WrongKind`] on header
    /// mismatches, and [`DataError::Io`] on read failure.
    pub fn new(mut r: R, expected: RecordKind) -> Result<Self, DataError> {
        let mut header = [0u8; 20];
        read_exact(&mut r, &mut header, 0)?;
        let (magic, rest) = header.split_at(8);
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(DataError::BadMagic { found });
        }
        let (version_bytes, rest) = rest.split_at(2);
        let version = u16::from_le_bytes(le2(version_bytes));
        if version != VERSION {
            return Err(DataError::UnsupportedVersion { found: version });
        }
        let (kind_bytes, count_bytes) = rest.split_at(2);
        let tag = u16::from_le_bytes(le2(kind_bytes));
        let kind = RecordKind::from_tag(tag).ok_or(DataError::UnknownKind { found: tag })?;
        if kind != expected {
            return Err(DataError::WrongKind {
                expected,
                found: kind,
            });
        }
        let count = u64::from_le_bytes(le8(count_bytes));
        Ok(Self {
            r,
            count,
            next: 0,
            end_verified: false,
            buf: Vec::new(),
        })
    }

    /// The record count declared in the header.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Reads the next record's payload, or `None` after the last record
    /// (at which point the end marker has been verified).
    ///
    /// The returned slice borrows the reader's internal buffer and is valid
    /// until the next call.
    ///
    /// # Errors
    ///
    /// [`DataError::Truncated`], [`DataError::OversizedRecord`],
    /// [`DataError::ChecksumMismatch`], [`DataError::MissingEndMarker`], or
    /// [`DataError::Io`].
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, DataError> {
        if self.next == self.count {
            if !self.end_verified {
                let mut marker = [0u8; 4];
                read_exact(&mut self.r, &mut marker, self.next)
                    .map_err(|_| DataError::MissingEndMarker)?;
                if marker != END_MARKER {
                    return Err(DataError::MissingEndMarker);
                }
                self.end_verified = true;
            }
            return Ok(None);
        }
        let record = self.next;
        let mut frame = [0u8; 12];
        read_exact(&mut self.r, &mut frame, record)?;
        let (len_bytes, checksum_bytes) = frame.split_at(4);
        let len = u64::from(u32::from_le_bytes(le4(len_bytes)));
        let stored = u64::from_le_bytes(le8(checksum_bytes));
        if len > MAX_RECORD_LEN {
            return Err(DataError::OversizedRecord { record, len });
        }
        self.buf.resize(len as usize, 0);
        read_exact(&mut self.r, &mut self.buf, record)?;
        let computed = fnv1a(&self.buf);
        if computed != stored {
            return Err(DataError::ChecksumMismatch {
                record,
                stored,
                computed,
            });
        }
        self.next += 1;
        Ok(Some(&self.buf))
    }
}

/// `read_exact` with end-of-file mapped to [`DataError::Truncated`].
fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], record: u64) -> Result<(), DataError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            DataError::Truncated { record }
        } else {
            DataError::Io(e)
        }
    })
}

/// Infallible 2-byte array view of a slice already known to be that long.
fn le2(bytes: &[u8]) -> [u8; 2] {
    let mut arr = [0u8; 2];
    arr.copy_from_slice(bytes);
    arr
}

/// Infallible 4-byte array view of a slice already known to be that long.
fn le4(bytes: &[u8]) -> [u8; 4] {
    let mut arr = [0u8; 4];
    arr.copy_from_slice(bytes);
    arr
}

/// Infallible 8-byte array view of a slice already known to be that long.
fn le8(bytes: &[u8]) -> [u8; 8] {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(bytes);
    arr
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn build(records: &[&[u8]]) -> Vec<u8> {
        let mut w = ContainerWriter::new(Cursor::new(Vec::new()), RecordKind::Trajectories)
            .expect("header");
        for r in records {
            w.write_record(r).expect("record");
        }
        w.finish().expect("finish").into_inner()
    }

    #[test]
    fn empty_container_round_trips() {
        let bytes = build(&[]);
        let mut r =
            ContainerReader::new(Cursor::new(&bytes), RecordKind::Trajectories).expect("open");
        assert_eq!(r.count(), 0);
        assert!(r.next_record().expect("end").is_none());
        // Repeated calls after the end stay `None`.
        assert!(r.next_record().expect("end").is_none());
    }

    #[test]
    fn records_round_trip_in_order() {
        let bytes = build(&[b"alpha", b"", b"gamma-gamma"]);
        let mut r =
            ContainerReader::new(Cursor::new(&bytes), RecordKind::Trajectories).expect("open");
        assert_eq!(r.count(), 3);
        assert_eq!(r.next_record().expect("r0"), Some(b"alpha".as_slice()));
        assert_eq!(r.next_record().expect("r1"), Some(b"".as_slice()));
        assert_eq!(
            r.next_record().expect("r2"),
            Some(b"gamma-gamma".as_slice())
        );
        assert!(r.next_record().expect("end").is_none());
    }

    #[test]
    fn count_is_patched_into_header() {
        let bytes = build(&[b"x", b"y"]);
        assert_eq!(&bytes[12..20], &2u64.to_le_bytes());
    }
}
