//! Payload codecs and typed reader/writer pairs for each record kind.
//!
//! Every payload is self-contained: decoding validates structure (declared
//! counts vs. bytes present, chronology, coordinate ranges, truth ordering)
//! and rejects trailing bytes, so a checksum-valid but logically corrupt
//! record still surfaces a typed [`DataError::Malformed`].

use crate::codec::{
    dequantize, quantize_exact, read_f32, read_f64, read_u32, read_varint, read_varint_i64,
    write_f32, write_f64, write_u32, write_varint, write_varint_i64,
};
use crate::container::{ContainerReader, ContainerWriter};
use crate::error::{DataError, MalformedKind, RecordKind};
use lead_geo::{GpsPoint, Trajectory};
use std::io::{Read, Seek, Write};

/// Point-sequence encoding mode: raw IEEE-754 coordinate bits.
const MODE_RAW: u8 = 0;
/// Point-sequence encoding mode: delta-coded fixed-point 1e-7° grid.
const MODE_FIXED: u8 = 1;

/// Wraps a [`MalformedKind`] with the record index it was found in.
fn malformed(record: u64, kind: MalformedKind) -> DataError {
    DataError::Malformed { record, kind }
}

// ---------------------------------------------------------------------------
// Point sequences (shared by trajectory and labelled-sample payloads)
// ---------------------------------------------------------------------------

/// Appends a point sequence: `n varint | mode u8 | points`.
///
/// Timestamps are always delta-coded zigzag varints (first point absolute).
/// Coordinates use the fixed-point grid when *every* coordinate in the
/// sequence survives a bitwise round-trip through it, raw `f64` bits
/// otherwise — so decoding always reproduces the exact input bit patterns.
fn encode_points(points: &[GpsPoint], out: &mut Vec<u8>) {
    write_varint(out, points.len() as u64);
    let quantized: Option<Vec<(i64, i64)>> = points
        .iter()
        .map(|p| Some((quantize_exact(p.lat)?, quantize_exact(p.lng)?)))
        .collect();
    match quantized {
        Some(grid) => {
            out.push(MODE_FIXED);
            let mut prev_t = 0i64;
            let mut prev_lat = 0i64;
            let mut prev_lng = 0i64;
            for (p, (qlat, qlng)) in points.iter().zip(&grid) {
                write_varint_i64(out, p.t - prev_t);
                write_varint_i64(out, qlat - prev_lat);
                write_varint_i64(out, qlng - prev_lng);
                prev_t = p.t;
                prev_lat = *qlat;
                prev_lng = *qlng;
            }
        }
        None => {
            out.push(MODE_RAW);
            let mut prev_t = 0i64;
            for p in points {
                write_varint_i64(out, p.t - prev_t);
                write_f64(out, p.lat);
                write_f64(out, p.lng);
                prev_t = p.t;
            }
        }
    }
}

/// Decodes a point sequence, validating chronology and coordinate ranges.
fn decode_points(input: &mut &[u8], record: u64) -> Result<Vec<GpsPoint>, DataError> {
    let n = read_varint(input).map_err(|k| malformed(record, k))?;
    // Each point is at least 3 bytes (three 1-byte varints), so a count
    // larger than the remaining payload is corrupt, not just big.
    if n > input.len() as u64 {
        return Err(malformed(record, MalformedKind::LengthOverflow));
    }
    let mode = input
        .split_first()
        .map(|(&m, rest)| {
            *input = rest;
            m
        })
        .ok_or_else(|| malformed(record, MalformedKind::TruncatedPayload))?;
    let mut points = Vec::with_capacity(n as usize);
    let mut prev_t = 0i64;
    let mut prev_lat = 0i64;
    let mut prev_lng = 0i64;
    for i in 0..n {
        let dt = read_varint_i64(input).map_err(|k| malformed(record, k))?;
        let t = prev_t
            .checked_add(dt)
            .ok_or_else(|| malformed(record, MalformedKind::VarintOverflow))?;
        if i > 0 && t <= prev_t {
            return Err(malformed(record, MalformedKind::NonChronological));
        }
        let (lat, lng) = match mode {
            MODE_FIXED => {
                let dlat = read_varint_i64(input).map_err(|k| malformed(record, k))?;
                let dlng = read_varint_i64(input).map_err(|k| malformed(record, k))?;
                let qlat = prev_lat
                    .checked_add(dlat)
                    .ok_or_else(|| malformed(record, MalformedKind::VarintOverflow))?;
                let qlng = prev_lng
                    .checked_add(dlng)
                    .ok_or_else(|| malformed(record, MalformedKind::VarintOverflow))?;
                prev_lat = qlat;
                prev_lng = qlng;
                (dequantize(qlat), dequantize(qlng))
            }
            MODE_RAW => {
                let lat = read_f64(input).map_err(|k| malformed(record, k))?;
                let lng = read_f64(input).map_err(|k| malformed(record, k))?;
                (lat, lng)
            }
            other => return Err(malformed(record, MalformedKind::BadMode(other))),
        };
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lng) {
            return Err(malformed(record, MalformedKind::CoordinateRange));
        }
        prev_t = t;
        points.push(GpsPoint::new(lat, lng, t));
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// Trajectory records
// ---------------------------------------------------------------------------

/// Encodes one `(truck_id, trajectory)` record payload.
pub fn encode_trajectory(truck_id: u32, trajectory: &Trajectory) -> Vec<u8> {
    let mut out = Vec::new();
    write_u32(&mut out, truck_id);
    encode_points(trajectory.points(), &mut out);
    out
}

/// Decodes a trajectory record payload.
///
/// # Errors
///
/// [`DataError::Malformed`] when the payload is structurally invalid.
pub fn decode_trajectory(mut payload: &[u8], record: u64) -> Result<(u32, Trajectory), DataError> {
    let truck_id = read_u32(&mut payload).map_err(|k| malformed(record, k))?;
    let points = decode_points(&mut payload, record)?;
    if !payload.is_empty() {
        return Err(malformed(record, MalformedKind::TrailingPayload));
    }
    // Chronology was validated during decoding, so the debug assertion in
    // `Trajectory::new` cannot fire.
    Ok((truck_id, Trajectory::new(points)))
}

/// Writes trajectory containers.
#[derive(Debug)]
pub struct TrajectoryWriter<W: Write + Seek> {
    inner: ContainerWriter<W>,
}

impl<W: Write + Seek> TrajectoryWriter<W> {
    /// Starts a trajectory container.
    ///
    /// # Errors
    ///
    /// [`DataError::Io`] when the header cannot be written.
    pub fn new(w: W) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerWriter::new(w, RecordKind::Trajectories)?,
        })
    }

    /// Appends one trajectory record.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::write_record`].
    pub fn write(&mut self, truck_id: u32, trajectory: &Trajectory) -> Result<(), DataError> {
        self.inner
            .write_record(&encode_trajectory(truck_id, trajectory))
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Finishes the container and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::finish`].
    pub fn finish(self) -> Result<W, DataError> {
        self.inner.finish()
    }
}

/// Reads trajectory containers.
#[derive(Debug)]
pub struct TrajectoryReader<R: Read> {
    inner: ContainerReader<R>,
    next: u64,
}

impl<R: Read> TrajectoryReader<R> {
    /// Opens a trajectory container, validating the header.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::new`].
    pub fn new(r: R) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerReader::new(r, RecordKind::Trajectories)?,
            next: 0,
        })
    }

    /// The record count declared in the header.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Reads the next record, or `None` after the verified end marker.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::next_record`], plus [`DataError::Malformed`]
    /// for structurally invalid payloads.
    pub fn next_record(&mut self) -> Result<Option<(u32, Trajectory)>, DataError> {
        let record = self.next;
        match self.inner.next_record()? {
            None => Ok(None),
            Some(payload) => {
                let decoded = decode_trajectory(payload, record)?;
                self.next += 1;
                Ok(Some(decoded))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Labelled-sample records
// ---------------------------------------------------------------------------

/// One decoded labelled training sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSampleRecord {
    /// The truck this sample belongs to.
    pub truck_id: u32,
    /// Day index within the generated dataset (0 for sources without one).
    pub day: u32,
    /// Number of planned (decoy) stays, when the producer knows it.
    pub planned_stays: u32,
    /// Ground-truth boundaries: load start/end, unload start/end (seconds,
    /// strictly increasing).
    pub truth_s: [i64; 4],
    /// The raw GPS trajectory.
    pub trajectory: Trajectory,
}

/// Encodes one labelled-sample record payload.
pub fn encode_labeled_sample(sample: &LabeledSampleRecord) -> Vec<u8> {
    let mut out = Vec::new();
    write_u32(&mut out, sample.truck_id);
    write_u32(&mut out, sample.day);
    write_varint(&mut out, u64::from(sample.planned_stays));
    let mut prev = 0i64;
    for &b in &sample.truth_s {
        write_varint_i64(&mut out, b - prev);
        prev = b;
    }
    encode_points(sample.trajectory.points(), &mut out);
    out
}

/// Decodes a labelled-sample record payload, validating truth ordering.
///
/// # Errors
///
/// [`DataError::Malformed`] when the payload is structurally invalid,
/// including [`MalformedKind::TruthOrder`] when the four ground-truth
/// boundaries are not strictly increasing.
pub fn decode_labeled_sample(
    mut payload: &[u8],
    record: u64,
) -> Result<LabeledSampleRecord, DataError> {
    let truck_id = read_u32(&mut payload).map_err(|k| malformed(record, k))?;
    let day = read_u32(&mut payload).map_err(|k| malformed(record, k))?;
    let planned = read_varint(&mut payload).map_err(|k| malformed(record, k))?;
    let planned_stays =
        u32::try_from(planned).map_err(|_| malformed(record, MalformedKind::LengthOverflow))?;
    let mut truth_s = [0i64; 4];
    let mut prev = 0i64;
    for (i, slot) in truth_s.iter_mut().enumerate() {
        let delta = read_varint_i64(&mut payload).map_err(|k| malformed(record, k))?;
        let b = prev
            .checked_add(delta)
            .ok_or_else(|| malformed(record, MalformedKind::VarintOverflow))?;
        if i > 0 && b <= prev {
            return Err(malformed(record, MalformedKind::TruthOrder));
        }
        *slot = b;
        prev = b;
    }
    let points = decode_points(&mut payload, record)?;
    if !payload.is_empty() {
        return Err(malformed(record, MalformedKind::TrailingPayload));
    }
    Ok(LabeledSampleRecord {
        truck_id,
        day,
        planned_stays,
        truth_s,
        trajectory: Trajectory::new(points),
    })
}

/// Writes labelled-sample containers.
#[derive(Debug)]
pub struct LabeledSampleWriter<W: Write + Seek> {
    inner: ContainerWriter<W>,
}

impl<W: Write + Seek> LabeledSampleWriter<W> {
    /// Starts a labelled-sample container.
    ///
    /// # Errors
    ///
    /// [`DataError::Io`] when the header cannot be written.
    pub fn new(w: W) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerWriter::new(w, RecordKind::LabeledSamples)?,
        })
    }

    /// Appends one labelled sample.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::write_record`].
    pub fn write(&mut self, sample: &LabeledSampleRecord) -> Result<(), DataError> {
        self.inner.write_record(&encode_labeled_sample(sample))
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Finishes the container and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::finish`].
    pub fn finish(self) -> Result<W, DataError> {
        self.inner.finish()
    }
}

/// Reads labelled-sample containers.
#[derive(Debug)]
pub struct LabeledSampleReader<R: Read> {
    inner: ContainerReader<R>,
    next: u64,
}

impl<R: Read> LabeledSampleReader<R> {
    /// Opens a labelled-sample container, validating the header.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::new`].
    pub fn new(r: R) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerReader::new(r, RecordKind::LabeledSamples)?,
            next: 0,
        })
    }

    /// The record count declared in the header.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Reads the next sample, or `None` after the verified end marker.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::next_record`], plus [`DataError::Malformed`]
    /// for structurally invalid payloads.
    pub fn next_record(&mut self) -> Result<Option<LabeledSampleRecord>, DataError> {
        let record = self.next;
        match self.inner.next_record()? {
            None => Ok(None),
            Some(payload) => {
                let decoded = decode_labeled_sample(payload, record)?;
                self.next += 1;
                Ok(Some(decoded))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// POI records
// ---------------------------------------------------------------------------

/// One point of interest: a category tag and a coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoiRecord {
    /// Category index (the consumer validates it against its taxonomy).
    pub category: u16,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lng: f64,
}

/// Encodes a batch of POIs as one record payload.
pub fn encode_poi_batch(pois: &[PoiRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, pois.len() as u64);
    let quantized: Option<Vec<(i64, i64)>> = pois
        .iter()
        .map(|p| Some((quantize_exact(p.lat)?, quantize_exact(p.lng)?)))
        .collect();
    match quantized {
        Some(grid) => {
            out.push(MODE_FIXED);
            let mut prev_lat = 0i64;
            let mut prev_lng = 0i64;
            for (p, (qlat, qlng)) in pois.iter().zip(&grid) {
                write_varint(&mut out, u64::from(p.category));
                write_varint_i64(&mut out, qlat - prev_lat);
                write_varint_i64(&mut out, qlng - prev_lng);
                prev_lat = *qlat;
                prev_lng = *qlng;
            }
        }
        None => {
            out.push(MODE_RAW);
            for p in pois {
                write_varint(&mut out, u64::from(p.category));
                write_f64(&mut out, p.lat);
                write_f64(&mut out, p.lng);
            }
        }
    }
    out
}

/// Decodes a POI batch payload.
///
/// # Errors
///
/// [`DataError::Malformed`] when the payload is structurally invalid.
pub fn decode_poi_batch(mut payload: &[u8], record: u64) -> Result<Vec<PoiRecord>, DataError> {
    let n = read_varint(&mut payload).map_err(|k| malformed(record, k))?;
    if n > payload.len() as u64 {
        return Err(malformed(record, MalformedKind::LengthOverflow));
    }
    let mode = payload
        .split_first()
        .map(|(&m, rest)| {
            payload = rest;
            m
        })
        .ok_or_else(|| malformed(record, MalformedKind::TruncatedPayload))?;
    if mode != MODE_FIXED && mode != MODE_RAW {
        return Err(malformed(record, MalformedKind::BadMode(mode)));
    }
    let mut pois = Vec::with_capacity(n as usize);
    let mut prev_lat = 0i64;
    let mut prev_lng = 0i64;
    for _ in 0..n {
        let cat = read_varint(&mut payload).map_err(|k| malformed(record, k))?;
        let category =
            u16::try_from(cat).map_err(|_| malformed(record, MalformedKind::LengthOverflow))?;
        let (lat, lng) = if mode == MODE_FIXED {
            let dlat = read_varint_i64(&mut payload).map_err(|k| malformed(record, k))?;
            let dlng = read_varint_i64(&mut payload).map_err(|k| malformed(record, k))?;
            let qlat = prev_lat
                .checked_add(dlat)
                .ok_or_else(|| malformed(record, MalformedKind::VarintOverflow))?;
            let qlng = prev_lng
                .checked_add(dlng)
                .ok_or_else(|| malformed(record, MalformedKind::VarintOverflow))?;
            prev_lat = qlat;
            prev_lng = qlng;
            (dequantize(qlat), dequantize(qlng))
        } else {
            let lat = read_f64(&mut payload).map_err(|k| malformed(record, k))?;
            let lng = read_f64(&mut payload).map_err(|k| malformed(record, k))?;
            (lat, lng)
        };
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lng) {
            return Err(malformed(record, MalformedKind::CoordinateRange));
        }
        pois.push(PoiRecord { category, lat, lng });
    }
    if !payload.is_empty() {
        return Err(malformed(record, MalformedKind::TrailingPayload));
    }
    Ok(pois)
}

/// Writes POI containers (each record is a batch of POIs).
#[derive(Debug)]
pub struct PoiWriter<W: Write + Seek> {
    inner: ContainerWriter<W>,
}

impl<W: Write + Seek> PoiWriter<W> {
    /// Starts a POI container.
    ///
    /// # Errors
    ///
    /// [`DataError::Io`] when the header cannot be written.
    pub fn new(w: W) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerWriter::new(w, RecordKind::Pois)?,
        })
    }

    /// Appends one batch of POIs.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::write_record`].
    pub fn write_batch(&mut self, pois: &[PoiRecord]) -> Result<(), DataError> {
        self.inner.write_record(&encode_poi_batch(pois))
    }

    /// Finishes the container and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::finish`].
    pub fn finish(self) -> Result<W, DataError> {
        self.inner.finish()
    }
}

/// Reads POI containers batch by batch.
#[derive(Debug)]
pub struct PoiReader<R: Read> {
    inner: ContainerReader<R>,
    next: u64,
}

impl<R: Read> PoiReader<R> {
    /// Opens a POI container, validating the header.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::new`].
    pub fn new(r: R) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerReader::new(r, RecordKind::Pois)?,
            next: 0,
        })
    }

    /// Reads the next batch, or `None` after the verified end marker.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::next_record`], plus [`DataError::Malformed`]
    /// for structurally invalid payloads.
    pub fn next_batch(&mut self) -> Result<Option<Vec<PoiRecord>>, DataError> {
        let record = self.next;
        match self.inner.next_record()? {
            None => Ok(None),
            Some(payload) => {
                let decoded = decode_poi_batch(payload, record)?;
                self.next += 1;
                Ok(Some(decoded))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tensor records
// ---------------------------------------------------------------------------

/// One dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorRecord {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// Row-major values, `rows * cols` long.
    pub data: Vec<f32>,
}

/// Encodes one tensor record payload.
pub fn encode_tensor(tensor: &TensorRecord) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, u64::from(tensor.rows));
    write_varint(&mut out, u64::from(tensor.cols));
    for &v in &tensor.data {
        write_f32(&mut out, v);
    }
    out
}

/// Decodes a tensor record payload.
///
/// # Errors
///
/// [`DataError::Malformed`] when the payload is structurally invalid —
/// including a declared shape whose element count does not match the bytes
/// present ([`MalformedKind::LengthOverflow`] / trailing bytes).
pub fn decode_tensor(mut payload: &[u8], record: u64) -> Result<TensorRecord, DataError> {
    let rows_v = read_varint(&mut payload).map_err(|k| malformed(record, k))?;
    let cols_v = read_varint(&mut payload).map_err(|k| malformed(record, k))?;
    let rows =
        u32::try_from(rows_v).map_err(|_| malformed(record, MalformedKind::LengthOverflow))?;
    let cols =
        u32::try_from(cols_v).map_err(|_| malformed(record, MalformedKind::LengthOverflow))?;
    let elems = u64::from(rows) * u64::from(cols);
    if elems * 4 != payload.len() as u64 {
        return Err(malformed(
            record,
            if elems * 4 > payload.len() as u64 {
                MalformedKind::LengthOverflow
            } else {
                MalformedKind::TrailingPayload
            },
        ));
    }
    let mut data = Vec::with_capacity(elems as usize);
    for _ in 0..elems {
        data.push(read_f32(&mut payload).map_err(|k| malformed(record, k))?);
    }
    Ok(TensorRecord { rows, cols, data })
}

/// Writes tensor containers.
#[derive(Debug)]
pub struct TensorWriter<W: Write + Seek> {
    inner: ContainerWriter<W>,
}

impl<W: Write + Seek> TensorWriter<W> {
    /// Starts a tensor container.
    ///
    /// # Errors
    ///
    /// [`DataError::Io`] when the header cannot be written.
    pub fn new(w: W) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerWriter::new(w, RecordKind::Tensors)?,
        })
    }

    /// Appends one tensor.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::write_record`].
    pub fn write(&mut self, tensor: &TensorRecord) -> Result<(), DataError> {
        self.inner.write_record(&encode_tensor(tensor))
    }

    /// Finishes the container and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// As [`ContainerWriter::finish`].
    pub fn finish(self) -> Result<W, DataError> {
        self.inner.finish()
    }
}

/// Reads tensor containers.
#[derive(Debug)]
pub struct TensorReader<R: Read> {
    inner: ContainerReader<R>,
    next: u64,
}

impl<R: Read> TensorReader<R> {
    /// Opens a tensor container, validating the header.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::new`].
    pub fn new(r: R) -> Result<Self, DataError> {
        Ok(Self {
            inner: ContainerReader::new(r, RecordKind::Tensors)?,
            next: 0,
        })
    }

    /// Reads the next tensor, or `None` after the verified end marker.
    ///
    /// # Errors
    ///
    /// As [`ContainerReader::next_record`], plus [`DataError::Malformed`]
    /// for structurally invalid payloads.
    pub fn next_record(&mut self) -> Result<Option<TensorRecord>, DataError> {
        let record = self.next;
        match self.inner.next_record()? {
            None => Ok(None),
            Some(payload) => {
                let decoded = decode_tensor(payload, record)?;
                self.next += 1;
                Ok(Some(decoded))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tr(points: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::new(
            points
                .iter()
                .map(|&(lat, lng, t)| GpsPoint::new(lat, lng, t))
                .collect(),
        )
    }

    #[test]
    fn trajectory_round_trips_bitwise_fixed_mode() {
        let t = tr(&[
            (31.2304, 121.4737, 1_600_000_000),
            (31.2305, 121.4739, 1_600_000_030),
            (31.2307, 121.4742, 1_600_000_090),
        ]);
        let payload = encode_trajectory(7, &t);
        // Fixed-point mode engages for 7-decimal coordinates... whenever
        // exact; either way the round-trip must be bitwise.
        let (id, back) = decode_trajectory(&payload, 0).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back.len(), t.len());
        for (a, b) in back.points().iter().zip(t.points()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.lat.to_bits(), b.lat.to_bits());
            assert_eq!(a.lng.to_bits(), b.lng.to_bits());
        }
    }

    #[test]
    fn trajectory_round_trips_bitwise_raw_mode() {
        // A coordinate with full f64 precision cannot live on the 1e-7 grid,
        // forcing RAW mode.
        let t = tr(&[
            (31.2304 + 1e-9, 121.4737 + 3e-9, 100),
            (31.2305 + 7e-9, 121.4738 + 9e-9, 160),
        ]);
        let payload = encode_trajectory(1, &t);
        let (_, back) = decode_trajectory(&payload, 0).unwrap();
        for (a, b) in back.points().iter().zip(t.points()) {
            assert_eq!(a.lat.to_bits(), b.lat.to_bits());
            assert_eq!(a.lng.to_bits(), b.lng.to_bits());
        }
    }

    #[test]
    fn fixed_mode_is_smaller_than_raw() {
        // Build coordinates directly on the 1e-7° grid so FIXED mode is
        // guaranteed to engage.
        let fixed: Vec<GpsPoint> = (0..100)
            .map(|i| {
                GpsPoint::new(
                    crate::codec::dequantize(312_000_000 + i64::from(i) * 1000),
                    crate::codec::dequantize(1_215_000_000),
                    1000 + i64::from(i) * 30,
                )
            })
            .collect();
        let mut raw_pts = fixed.clone();
        for p in &mut raw_pts {
            p.lat += 1e-12;
        }
        let fixed_payload = encode_trajectory(0, &Trajectory::new(fixed));
        let raw_payload = encode_trajectory(0, &Trajectory::new_unchecked(raw_pts));
        assert!(
            fixed_payload.len() * 2 < raw_payload.len(),
            "fixed {} raw {}",
            fixed_payload.len(),
            raw_payload.len()
        );
    }

    #[test]
    fn labeled_sample_round_trips() {
        let sample = LabeledSampleRecord {
            truck_id: 42,
            day: 3,
            planned_stays: 2,
            truth_s: [100, 200, 900, 1000],
            trajectory: tr(&[(31.0, 121.0, 50), (31.1, 121.1, 2000)]),
        };
        let payload = encode_labeled_sample(&sample);
        let back = decode_labeled_sample(&payload, 0).unwrap();
        assert_eq!(back, sample);
    }

    #[test]
    fn truth_order_violation_is_typed() {
        let sample = LabeledSampleRecord {
            truck_id: 0,
            day: 0,
            planned_stays: 0,
            truth_s: [100, 200, 900, 1000],
            trajectory: tr(&[(31.0, 121.0, 50)]),
        };
        // Encode by hand with boundaries 100, 100 (delta 0), violating
        // strict ordering.
        let mut out = Vec::new();
        crate::codec::write_u32(&mut out, 0);
        crate::codec::write_u32(&mut out, 0);
        crate::codec::write_varint(&mut out, 0);
        for d in [100i64, 0, 700, 100] {
            crate::codec::write_varint_i64(&mut out, d);
        }
        encode_points(sample.trajectory.points(), &mut out);
        let payload = out;
        match decode_labeled_sample(&payload, 5) {
            Err(DataError::Malformed {
                record: 5,
                kind: MalformedKind::TruthOrder,
            }) => {}
            other => panic!("expected TruthOrder, got {other:?}"),
        }
    }

    #[test]
    fn poi_batch_round_trips() {
        let pois = vec![
            PoiRecord {
                category: 3,
                lat: 31.2001,
                lng: 121.4001,
            },
            PoiRecord {
                category: 17,
                lat: 31.2002,
                lng: 121.4003,
            },
        ];
        let payload = encode_poi_batch(&pois);
        assert_eq!(decode_poi_batch(&payload, 0).unwrap(), pois);
    }

    #[test]
    fn tensor_round_trips_and_shape_mismatch_is_typed() {
        let t = TensorRecord {
            rows: 2,
            cols: 3,
            data: vec![1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, 1e30],
        };
        let payload = encode_tensor(&t);
        assert_eq!(decode_tensor(&payload, 0).unwrap(), t);

        let mut short = payload.clone();
        short.truncate(payload.len() - 4);
        match decode_tensor(&short, 2) {
            Err(DataError::Malformed {
                record: 2,
                kind: MalformedKind::LengthOverflow,
            }) => {}
            other => panic!("expected LengthOverflow, got {other:?}"),
        }
    }

    #[test]
    fn typed_writers_and_readers_round_trip_files() {
        let t0 = tr(&[(31.0, 121.0, 10), (31.1, 121.1, 70)]);
        let t1 = tr(&[(30.9, 120.9, 5)]);
        let mut w = TrajectoryWriter::new(Cursor::new(Vec::new())).unwrap();
        w.write(1, &t0).unwrap();
        w.write(2, &t1).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        let mut r = TrajectoryReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(r.count(), 2);
        assert_eq!(r.next_record().unwrap(), Some((1, t0)));
        assert_eq!(r.next_record().unwrap(), Some((2, t1)));
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let w = TensorWriter::new(Cursor::new(Vec::new())).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        match TrajectoryReader::new(Cursor::new(&bytes)) {
            Err(DataError::WrongKind {
                expected: RecordKind::Trajectories,
                found: RecordKind::Tensors,
            }) => {}
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }
}
