//! The streaming ingestion API: [`TrajectorySource`].
//!
//! A source exposes its data as a fixed list of *shards* that can each be
//! re-read any number of times (re-invoking a shard seeks/rewinds), so
//! consumers can make multiple bounded-memory passes — e.g. one to fit
//! normalization statistics and one to train — without the source
//! materializing everything.

use crate::error::DataError;
use crate::records::TrajectoryReader;
use lead_geo::csv::CsvReader;
use lead_geo::Trajectory;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// A shardable, rewindable stream of `(truck_id, Trajectory)` records.
///
/// Contract: `read_shard(i)` delivers shard `i`'s records, in a fixed
/// per-shard order, every time it is invoked; shards partition the dataset
/// and concatenating shards `0..num_shards()` in order yields the whole
/// dataset in its canonical order. `len_hint()` is the total record count
/// when the source knows it cheaply.
pub trait TrajectorySource {
    /// Total record count across all shards, when cheaply known.
    fn len_hint(&self) -> Option<u64>;

    /// Number of shards (at least 1, even for empty sources).
    fn num_shards(&self) -> usize;

    /// Streams shard `shard`'s records into `sink`, in canonical order.
    ///
    /// # Errors
    ///
    /// [`DataError::NoSuchShard`] for an out-of-range index; I/O, format,
    /// or CSV errors from the backing store.
    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(u32, Trajectory),
    ) -> Result<(), DataError>;
}

/// Returns the `NoSuchShard` error for an out-of-range shard index.
fn no_such_shard(shard: usize, shards: usize) -> DataError {
    DataError::NoSuchShard { shard, shards }
}

/// How many shards a `len`-item in-RAM source with the given shard size has.
fn vec_shards(len: usize, shard_size: usize) -> usize {
    len.div_ceil(shard_size).max(1)
}

/// The in-RAM path: a `Vec` exposed through the source API, optionally
/// split into fixed-size shards (useful for exercising shard-boundary
/// behavior in tests).
#[derive(Debug)]
pub struct VecTrajectories {
    items: Vec<(u32, Trajectory)>,
    shard_size: usize,
}

impl VecTrajectories {
    /// Wraps `items` as a single-shard source.
    pub fn new(items: Vec<(u32, Trajectory)>) -> Self {
        let shard_size = items.len().max(1);
        Self { items, shard_size }
    }

    /// Wraps `items` split into shards of at most `shard_size` records
    /// (clamped to at least 1).
    pub fn with_shard_size(items: Vec<(u32, Trajectory)>, shard_size: usize) -> Self {
        Self {
            items,
            shard_size: shard_size.max(1),
        }
    }
}

impl TrajectorySource for VecTrajectories {
    fn len_hint(&self) -> Option<u64> {
        Some(self.items.len() as u64)
    }

    fn num_shards(&self) -> usize {
        vec_shards(self.items.len(), self.shard_size)
    }

    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(u32, Trajectory),
    ) -> Result<(), DataError> {
        let shards = self.num_shards();
        if shard >= shards {
            return Err(no_such_shard(shard, shards));
        }
        let start = shard * self.shard_size;
        let end = (start + self.shard_size).min(self.items.len());
        for (id, tr) in self.items.iter().skip(start).take(end - start) {
            sink(*id, tr.clone());
        }
        Ok(())
    }
}

/// A CSV file as a single-shard source; each pass re-opens and re-parses
/// the file, so repeated reads need no in-RAM copy.
#[derive(Debug)]
pub struct CsvTrajectoryFile {
    path: PathBuf,
}

impl CsvTrajectoryFile {
    /// Wraps the CSV file at `path` (opened lazily on each read).
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
        }
    }
}

impl TrajectorySource for CsvTrajectoryFile {
    fn len_hint(&self) -> Option<u64> {
        // Counting would require a full parse; CSV stays unhinted.
        None
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(u32, Trajectory),
    ) -> Result<(), DataError> {
        if shard >= 1 {
            return Err(no_such_shard(shard, 1));
        }
        let file = File::open(&self.path)?;
        for item in CsvReader::new(BufReader::new(file))? {
            let (id, tr) = item?;
            sink(id, tr);
        }
        Ok(())
    }
}

/// A set of binary trajectory container files, one shard per file.
///
/// Construction opens every file once to validate its header and sum the
/// declared record counts, so `len_hint` is exact.
#[derive(Debug)]
pub struct BinaryTrajectoryShards {
    paths: Vec<PathBuf>,
    total: u64,
}

impl BinaryTrajectoryShards {
    /// Opens a shard set, validating each file's header.
    ///
    /// # Errors
    ///
    /// Any header-validation or I/O error from the shard files.
    pub fn open<P: AsRef<Path>>(paths: &[P]) -> Result<Self, DataError> {
        let mut total = 0u64;
        let mut owned = Vec::with_capacity(paths.len());
        for p in paths {
            let file = File::open(p.as_ref())?;
            let reader = TrajectoryReader::new(BufReader::new(file))?;
            total += reader.count();
            owned.push(p.as_ref().to_path_buf());
        }
        Ok(Self {
            paths: owned,
            total,
        })
    }
}

impl TrajectorySource for BinaryTrajectoryShards {
    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }

    fn num_shards(&self) -> usize {
        self.paths.len().max(1)
    }

    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(u32, Trajectory),
    ) -> Result<(), DataError> {
        let shards = self.num_shards();
        let Some(path) = self.paths.get(shard) else {
            return Err(no_such_shard(shard, shards));
        };
        let file = File::open(path)?;
        let mut reader = TrajectoryReader::new(BufReader::new(file))?;
        while let Some((id, tr)) = reader.next_record()? {
            sink(id, tr);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::GpsPoint;

    fn items(n: usize) -> Vec<(u32, Trajectory)> {
        (0..n)
            .map(|i| {
                let base = i as i64 * 1000;
                (
                    i as u32,
                    Trajectory::new(vec![
                        GpsPoint::new(31.0, 121.0, base),
                        GpsPoint::new(31.1, 121.1, base + 60),
                    ]),
                )
            })
            .collect()
    }

    fn drain(src: &mut dyn TrajectorySource) -> Vec<(u32, Trajectory)> {
        let mut out = Vec::new();
        for s in 0..src.num_shards() {
            src.read_shard(s, &mut |id, tr| out.push((id, tr))).unwrap();
        }
        out
    }

    #[test]
    fn vec_source_shards_partition_in_order() {
        let data = items(7);
        for shard_size in 1..=8 {
            let mut src = VecTrajectories::with_shard_size(data.clone(), shard_size);
            assert_eq!(src.len_hint(), Some(7));
            assert_eq!(drain(&mut src), data, "shard_size {shard_size}");
        }
    }

    #[test]
    fn vec_source_rereads_shards_identically() {
        let mut src = VecTrajectories::with_shard_size(items(5), 2);
        let mut first = Vec::new();
        src.read_shard(1, &mut |id, tr| first.push((id, tr)))
            .unwrap();
        let mut second = Vec::new();
        src.read_shard(1, &mut |id, tr| second.push((id, tr)))
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn out_of_range_shard_is_typed() {
        let mut src = VecTrajectories::new(items(3));
        match src.read_shard(9, &mut |_, _| {}) {
            Err(DataError::NoSuchShard {
                shard: 9,
                shards: 1,
            }) => {}
            other => panic!("expected NoSuchShard, got {other:?}"),
        }
    }

    #[test]
    fn empty_vec_source_has_one_empty_shard() {
        let mut src = VecTrajectories::new(Vec::new());
        assert_eq!(src.num_shards(), 1);
        assert!(drain(&mut src).is_empty());
    }
}
