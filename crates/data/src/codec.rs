//! Byte-level primitives: FNV-1a checksums, zigzag varints, and little-endian
//! scalar encodings shared by every record type.

use crate::error::MalformedKind;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Computes the 64-bit FNV-1a hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Maps a signed value onto an unsigned one with small magnitudes staying
/// small (`0, -1, 1, -2, ... -> 0, 1, 2, 3, ...`).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as a LEB128-style varint (7 payload bits per byte).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a varint from the front of `input`, advancing it past the bytes
/// consumed.
///
/// # Errors
///
/// [`MalformedKind::TruncatedPayload`] when `input` ends mid-varint;
/// [`MalformedKind::VarintOverflow`] when the encoding runs past 64 bits.
pub fn read_varint(input: &mut &[u8]) -> Result<u64, MalformedKind> {
    let mut v: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let (&b, rest) = input.split_first().ok_or(MalformedKind::TruncatedPayload)?;
        *input = rest;
        let payload = u64::from(b & 0x7f);
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(MalformedKind::VarintOverflow);
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends a signed value as a zigzag varint.
pub fn write_varint_i64(out: &mut Vec<u8>, v: i64) {
    write_varint(out, zigzag(v));
}

/// Reads a zigzag varint from the front of `input`.
///
/// # Errors
///
/// Same conditions as [`read_varint`].
pub fn read_varint_i64(input: &mut &[u8]) -> Result<i64, MalformedKind> {
    read_varint(input).map(unzigzag)
}

/// Takes `n` bytes off the front of `input`.
///
/// # Errors
///
/// [`MalformedKind::TruncatedPayload`] when fewer than `n` bytes remain.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], MalformedKind> {
    if input.len() < n {
        return Err(MalformedKind::TruncatedPayload);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

/// Appends a `u32` in little-endian order.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` from the front of `input`.
///
/// # Errors
///
/// [`MalformedKind::TruncatedPayload`] when fewer than four bytes remain.
pub fn read_u32(input: &mut &[u8]) -> Result<u32, MalformedKind> {
    let bytes = take(input, 4)?;
    let arr: [u8; 4] = bytes
        .try_into()
        .map_err(|_| MalformedKind::TruncatedPayload)?;
    Ok(u32::from_le_bytes(arr))
}

/// Appends an `f64` as its IEEE-754 bits in little-endian order.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads a little-endian IEEE-754 `f64` from the front of `input`.
///
/// # Errors
///
/// [`MalformedKind::TruncatedPayload`] when fewer than eight bytes remain.
pub fn read_f64(input: &mut &[u8]) -> Result<f64, MalformedKind> {
    let bytes = take(input, 8)?;
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| MalformedKind::TruncatedPayload)?;
    Ok(f64::from_bits(u64::from_le_bytes(arr)))
}

/// Appends an `f32` as its IEEE-754 bits in little-endian order.
pub fn write_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads a little-endian IEEE-754 `f32` from the front of `input`.
///
/// # Errors
///
/// [`MalformedKind::TruncatedPayload`] when fewer than four bytes remain.
pub fn read_f32(input: &mut &[u8]) -> Result<f32, MalformedKind> {
    let bytes = take(input, 4)?;
    let arr: [u8; 4] = bytes
        .try_into()
        .map_err(|_| MalformedKind::TruncatedPayload)?;
    Ok(f32::from_bits(u32::from_le_bytes(arr)))
}

/// The fixed-point grid: degrees are stored as integer multiples of 1e-7°
/// (~1.1 cm of latitude) when that representation is bit-exact.
pub const FIXED_POINT_SCALE: f64 = 1e7;

/// Quantizes a coordinate onto the 1e-7° grid, returning `None` unless the
/// round-trip `(q as f64) / 1e7` reproduces `v`'s exact bit pattern.
pub fn quantize_exact(v: f64) -> Option<i64> {
    let scaled = v * FIXED_POINT_SCALE;
    if !scaled.is_finite() || scaled.abs() > 4.5e15 {
        return None;
    }
    let q = scaled.round() as i64;
    let back = q as f64 / FIXED_POINT_SCALE;
    if back.to_bits() == v.to_bits() {
        Some(q)
    } else {
        None
    }
}

/// Inverse of [`quantize_exact`]: maps a grid index back to degrees.
pub fn dequantize(q: i64) -> f64 {
    q as f64 / FIXED_POINT_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789, -987_654_321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut input = buf.as_slice();
        for &v in &values {
            assert_eq!(read_varint(&mut input).unwrap(), v);
        }
        assert!(input.is_empty());
    }

    #[test]
    fn varint_overflow_is_detected() {
        // Eleven continuation bytes cannot encode a 64-bit value.
        let bad = [0xffu8; 11];
        let mut input = bad.as_slice();
        assert_eq!(read_varint(&mut input), Err(MalformedKind::VarintOverflow));
    }

    #[test]
    fn varint_truncation_is_detected() {
        let bad = [0x80u8];
        let mut input = bad.as_slice();
        assert_eq!(
            read_varint(&mut input),
            Err(MalformedKind::TruncatedPayload)
        );
    }

    #[test]
    fn quantize_exact_accepts_csv_precision_coordinates() {
        // Coordinates written with 7 decimal places parse to values that
        // are exactly representable on the grid... when they are. The
        // contract is only that accepted values round-trip bitwise.
        for &v in &[31.2304, -121.4737, 0.0, 89.9999999, -180.0] {
            if let Some(q) = quantize_exact(v) {
                assert_eq!(dequantize(q).to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn quantize_exact_rejects_non_grid_values() {
        assert_eq!(quantize_exact(f64::NAN), None);
        assert_eq!(quantize_exact(f64::INFINITY), None);
        assert_eq!(quantize_exact(1e300), None);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("") is the offset basis; "a" is a published test vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
