//! Typed error surface for the binary container format.

use std::fmt;

/// What a container file holds; stored as a `u16` tag in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Raw `(truck_id, Trajectory)` records.
    Trajectories,
    /// Labelled training samples (trajectory + ground-truth intervals).
    LabeledSamples,
    /// POI database batches.
    Pois,
    /// Dense `f32` feature tensors.
    Tensors,
}

impl RecordKind {
    /// The on-disk `u16` tag for this kind.
    pub fn tag(self) -> u16 {
        match self {
            RecordKind::Trajectories => 1,
            RecordKind::LabeledSamples => 2,
            RecordKind::Pois => 3,
            RecordKind::Tensors => 4,
        }
    }

    /// Decodes an on-disk tag; `None` for unknown tags.
    pub fn from_tag(tag: u16) -> Option<Self> {
        match tag {
            1 => Some(RecordKind::Trajectories),
            2 => Some(RecordKind::LabeledSamples),
            3 => Some(RecordKind::Pois),
            4 => Some(RecordKind::Tensors),
            _ => None,
        }
    }
}

impl fmt::Display for RecordKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RecordKind::Trajectories => "trajectories",
            RecordKind::LabeledSamples => "labeled-samples",
            RecordKind::Pois => "pois",
            RecordKind::Tensors => "tensors",
        };
        f.write_str(name)
    }
}

/// Why a record payload failed structural validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MalformedKind {
    /// The point-encoding mode byte is not a known mode.
    BadMode(u8),
    /// The payload ended before its declared contents.
    TruncatedPayload,
    /// A varint ran past its maximum width (corrupted continuation bits).
    VarintOverflow,
    /// Decoded timestamps are not strictly increasing.
    NonChronological,
    /// A decoded coordinate is outside valid latitude/longitude ranges.
    CoordinateRange,
    /// Ground-truth interval boundaries are not strictly increasing.
    TruthOrder,
    /// A declared element count is impossibly large for the payload.
    LengthOverflow,
    /// The payload has bytes left over after its declared contents.
    TrailingPayload,
}

impl fmt::Display for MalformedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalformedKind::BadMode(m) => write!(f, "unknown point-encoding mode {m}"),
            MalformedKind::TruncatedPayload => f.write_str("payload shorter than declared"),
            MalformedKind::VarintOverflow => f.write_str("varint exceeds 64 bits"),
            MalformedKind::NonChronological => {
                f.write_str("timestamps are not strictly increasing")
            }
            MalformedKind::CoordinateRange => f.write_str("coordinate outside valid range"),
            MalformedKind::TruthOrder => {
                f.write_str("truth interval boundaries are not strictly increasing")
            }
            MalformedKind::LengthOverflow => {
                f.write_str("declared element count exceeds payload capacity")
            }
            MalformedKind::TrailingPayload => f.write_str("trailing bytes after payload contents"),
        }
    }
}

/// Errors produced while reading or writing binary containers.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// An underlying I/O failure (not a format violation).
    Io(std::io::Error),
    /// The file does not start with the `LEADDATA` magic.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The header declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// The header declares a record-kind tag this build does not know.
    UnknownKind {
        /// The tag actually found.
        found: u16,
    },
    /// The file holds a different kind of record than the reader expects.
    WrongKind {
        /// The kind the reader was opened for.
        expected: RecordKind,
        /// The kind the header declares.
        found: RecordKind,
    },
    /// The file ended mid-header or mid-record.
    Truncated {
        /// Zero-based index of the record being read (0 covers the header).
        record: u64,
    },
    /// A record frame declares a length above [`crate::MAX_RECORD_LEN`].
    OversizedRecord {
        /// Zero-based index of the offending record.
        record: u64,
        /// The declared payload length.
        len: u64,
    },
    /// A record payload does not match its stored FNV-1a checksum.
    ChecksumMismatch {
        /// Zero-based index of the offending record.
        record: u64,
        /// The checksum stored in the frame.
        stored: u64,
        /// The checksum computed over the payload read.
        computed: u64,
    },
    /// A record payload passed its checksum but fails structural validation.
    Malformed {
        /// Zero-based index of the offending record.
        record: u64,
        /// What was wrong with it.
        kind: MalformedKind,
    },
    /// The declared record count was read but the `LEND` end marker is absent.
    MissingEndMarker,
    /// A source was asked for a shard index it does not have.
    NoSuchShard {
        /// The requested shard index.
        shard: usize,
        /// How many shards the source has.
        shards: usize,
    },
    /// A CSV-backed source failed to parse its input.
    Csv(lead_geo::csv::CsvError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"LEADDATA\")")
            }
            DataError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            DataError::UnknownKind { found } => write!(f, "unknown record-kind tag {found}"),
            DataError::WrongKind { expected, found } => {
                write!(f, "wrong record kind: expected {expected}, found {found}")
            }
            DataError::Truncated { record } => {
                write!(f, "file truncated while reading record {record}")
            }
            DataError::OversizedRecord { record, len } => {
                write!(
                    f,
                    "record {record} declares oversized payload ({len} bytes)"
                )
            }
            DataError::ChecksumMismatch {
                record,
                stored,
                computed,
            } => write!(
                f,
                "record {record} checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            DataError::Malformed { record, kind } => write!(f, "record {record} malformed: {kind}"),
            DataError::MissingEndMarker => f.write_str("missing \"LEND\" end marker"),
            DataError::NoSuchShard { shard, shards } => {
                write!(f, "no such shard {shard} (source has {shards})")
            }
            DataError::Csv(e) => write!(f, "csv error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<lead_geo::csv::CsvError> for DataError {
    fn from(e: lead_geo::csv::CsvError) -> Self {
        DataError::Csv(e)
    }
}
