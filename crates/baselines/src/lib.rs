//! The stay-point baselines of the LEAD paper (Section VI-A):
//!
//! - [`SpR`] — a rule-based classifier: stay points are matched against a
//!   whitelist of historical loading/unloading locations within 500 m;
//! - [`SpRnn`] — GRU- or LSTM-based binary classifiers (128 hidden units)
//!   over each stay point's feature sequence;
//!
//! all three assemble the loaded trajectory with the same greedy strategy
//! ([`greedy_assemble`]): the earliest flagged stay point becomes the loading
//! stay, the latest the unloading stay; with fewer than two flags the
//! *default* loaded trajectory (first stay → last stay) is returned — the
//! invalid-detection fallback the paper describes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod greedy;
pub mod sp_r;
pub mod sp_rnn;
pub mod whitelist;

pub use greedy::{greedy_assemble, SpDetection};
pub use sp_r::SpR;
pub use sp_rnn::{RnnKind, SpRnn, SpRnnConfig};
pub use whitelist::Whitelist;
