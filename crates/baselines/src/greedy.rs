//! The greedy loaded-trajectory assembly shared by all stay-point baselines.

use lead_core::processing::{Candidate, ProcessedTrajectory};

/// Assembles a `(loading, unloading)` stay-point pair from per-stay l/u
/// flags: the first flagged stay is the loading stay, the last the unloading
/// stay. With fewer than two *distinct* flagged stays, the paper's default
/// loaded trajectory — first extracted stay to last extracted stay — is
/// returned.
///
/// # Panics
/// Panics if `n_stays < 2` or `lu_flags.len() != n_stays`.
pub fn greedy_assemble(n_stays: usize, lu_flags: &[bool]) -> (usize, usize) {
    assert!(n_stays >= 2, "need at least two stay points");
    assert_eq!(lu_flags.len(), n_stays, "one flag per stay point");
    let first = lu_flags.iter().position(|&f| f);
    let last = lu_flags.iter().rposition(|&f| f);
    match (first, last) {
        (Some(a), Some(b)) if a < b => (a, b),
        // 0 or 1 flagged stay: the default loaded trajectory.
        _ => (0, n_stays - 1),
    }
}

/// A baseline's detection on one raw trajectory.
#[derive(Debug, Clone)]
pub struct SpDetection {
    /// The processed trajectory the indexes refer to.
    pub processed: ProcessedTrajectory,
    /// Detected loading stay-point index.
    pub loading: usize,
    /// Detected unloading stay-point index.
    pub unloading: usize,
}

impl SpDetection {
    /// The detected loaded trajectory as a candidate pair.
    pub fn candidate(&self) -> Candidate {
        Candidate::new(self.loading, self.unloading)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_and_last_flags_win() {
        assert_eq!(
            greedy_assemble(5, &[false, true, true, false, true]),
            (1, 4)
        );
    }

    #[test]
    fn no_flags_fall_back_to_default() {
        assert_eq!(greedy_assemble(4, &[false; 4]), (0, 3));
    }

    #[test]
    fn single_flag_falls_back_to_default() {
        assert_eq!(greedy_assemble(4, &[false, false, true, false]), (0, 3));
    }

    #[test]
    fn exactly_two_flags() {
        assert_eq!(greedy_assemble(3, &[true, false, true]), (0, 2));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_stay_rejected() {
        let _ = greedy_assemble(1, &[true]);
    }

    #[test]
    #[should_panic(expected = "one flag per stay point")]
    fn flag_arity_checked() {
        let _ = greedy_assemble(3, &[true, false]);
    }
}
