//! SP-GRU and SP-LSTM: recurrent per-stay-point binary classifiers
//! (Section VI-A, Baselines (2)–(3)).
//!
//! Each extracted stay point's feature sequence (the same 32-dimensional
//! point features LEAD uses) is classified as *l/u stay point* or *ordinary
//! stay point* by a 128-hidden-unit GRU or LSTM; the greedy strategy then
//! assembles the loaded trajectory from the flags. Crucially — and this is
//! the paper's point — the classifier never sees the *moving behaviour*
//! around the stay, so staying scenarios that differ only in their movement
//! context (loading fuel vs. resting at the same fueling station) are
//! indistinguishable to it.

use crate::greedy::{greedy_assemble, SpDetection};
use lead_core::config::LeadConfig;
use lead_core::features::{FeatureExtractor, Normalizer};
use lead_core::label::truth_stay_indices;
use lead_core::pipeline::TrainSample;
use lead_core::poi::PoiDatabase;
use lead_core::processing::ProcessedTrajectory;
use lead_geo::Trajectory;
use lead_nn::layers::{Gru, Linear, Lstm};
use lead_nn::optim::Adam;
use lead_nn::train::{AccumTrainer, EarlyStopping};
use lead_nn::{Graph, Matrix, ParamSet, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which recurrent cell classifies the stay points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RnnKind {
    /// SP-GRU.
    Gru,
    /// SP-LSTM.
    Lstm,
}

impl RnnKind {
    /// The paper's method name.
    pub fn name(&self) -> &'static str {
        match self {
            RnnKind::Gru => "SP-GRU",
            RnnKind::Lstm => "SP-LSTM",
        }
    }
}

/// Hyper-parameters of the RNN baselines.
#[derive(Debug, Clone)]
pub struct SpRnnConfig {
    /// Hidden units (paper: 128).
    pub hidden: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Classification threshold on the sigmoid output.
    pub threshold: f32,
}

impl SpRnnConfig {
    /// The paper's settings.
    pub fn paper() -> Self {
        Self {
            hidden: 128,
            max_epochs: 15,
            threshold: 0.5,
        }
    }

    /// Small settings for tests.
    pub fn fast_test() -> Self {
        Self {
            hidden: 12,
            max_epochs: 2,
            threshold: 0.5,
        }
    }
}

impl Default for SpRnnConfig {
    fn default() -> Self {
        Self::paper()
    }
}

enum Cell {
    Gru(Gru),
    Lstm(Lstm),
}

/// A trained SP-GRU / SP-LSTM baseline.
pub struct SpRnn {
    kind: RnnKind,
    params: ParamSet,
    cell: Cell,
    out: Linear,
    normalizer: Normalizer,
    lead_config: LeadConfig,
    rnn_config: SpRnnConfig,
    use_poi: bool,
}

impl SpRnn {
    /// Trains the classifier on the archive; returns the model and the
    /// per-epoch mean BCE curve.
    pub fn fit(
        kind: RnnKind,
        samples: &[TrainSample],
        poi_db: &PoiDatabase,
        lead_config: &LeadConfig,
        rnn_config: &SpRnnConfig,
    ) -> (Self, Vec<f32>) {
        let config_check = lead_config.validate();
        assert!(config_check.is_ok(), "invalid LeadConfig: {config_check:?}");
        let mut rng = StdRng::seed_from_u64(lead_config.seed ^ 0x5F0F);

        // Processing + per-stay labels.
        let mut stays: Vec<(ProcessedTrajectory, Vec<bool>)> = Vec::new();
        for s in samples {
            let proc = ProcessedTrajectory::from_raw(&s.raw, lead_config);
            if let Some((l, u)) = truth_stay_indices(&proc, &s.truth) {
                let mut flags = vec![false; proc.num_stay_points()];
                flags[l] = true;
                flags[u] = true;
                stays.push((proc, flags));
            }
        }
        assert!(!stays.is_empty(), "no training sample survived processing");

        // Normalisation over the training stay points' features.
        let fx0 = FeatureExtractor::new(poi_db, lead_config, true);
        let mut rows = Vec::new();
        for (proc, _) in &stays {
            for p in proc.cleaned.points() {
                rows.push(fx0.raw_features(p));
            }
        }
        let normalizer = Normalizer::fit(&rows);
        drop(rows);
        let mut fx = fx0;
        fx.set_normalizer(normalizer.clone());

        // Feature sequences per stay point.
        let mut items: Vec<(Matrix, f32)> = Vec::new();
        for (proc, flags) in &stays {
            for (k, sp) in proc.stay_points.iter().enumerate() {
                let seq = fx.range_features(proc, sp.start, sp.end);
                items.push((seq, if flags[k] { 1.0 } else { 0.0 }));
            }
        }

        // Model.
        let mut ps = ParamSet::new();
        let in_dim = lead_core::features::FEATURE_DIM;
        let cell = match kind {
            RnnKind::Gru => Cell::Gru(Gru::new(
                &mut ps,
                &mut rng,
                "sp.gru",
                in_dim,
                rnn_config.hidden,
            )),
            RnnKind::Lstm => Cell::Lstm(Lstm::new(
                &mut ps,
                &mut rng,
                "sp.lstm",
                in_dim,
                rnn_config.hidden,
            )),
        };
        let out = Linear::new(&mut ps, &mut rng, "sp.out", rnn_config.hidden, 1);
        let mut model = Self {
            kind,
            params: ps,
            cell,
            out,
            normalizer,
            lead_config: lead_config.clone(),
            rnn_config: rnn_config.clone(),
            use_poi: true,
        };

        // Training loop (BCE per stay point, accumulated batches).
        let mut trainer = AccumTrainer::new(
            Adam::new(&model.params, lead_config.learning_rate.max(1e-4)),
            lead_config.batch_accumulation,
        )
        .with_clip_norm(lead_config.grad_clip_norm);
        let mut stopper = EarlyStopping::new(lead_config.early_stopping_patience, 1e-4);
        let mut order: Vec<usize> = (0..items.len()).collect();
        let mut curve = Vec::new();
        for _epoch in 0..rnn_config.max_epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            for &i in &order {
                let (seq, y) = &items[i];
                let mut g = Graph::new(&model.params);
                let z = model.logit(&mut g, seq);
                let loss = g.bce_with_logits_loss(z, &Matrix::from_vec(1, 1, vec![*y]));
                total += g.scalar(loss) as f64;
                let grads = g.backward(loss);
                trainer.submit(&mut model.params, grads);
            }
            trainer.flush(&mut model.params);
            let mean = (total / items.len() as f64) as f32;
            curve.push(mean);
            if stopper.observe(mean) {
                break;
            }
        }
        (model, curve)
    }

    /// The method name ("SP-GRU" / "SP-LSTM").
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn logit(&self, g: &mut Graph, seq: &Matrix) -> Var {
        assert!(seq.rows() > 0, "stay-point feature sequence is empty");
        let input = g.constant(seq.clone());
        let xs: Vec<Var> = (0..seq.rows()).map(|r| g.row(input, r)).collect();
        let last = match &self.cell {
            // lint: allow(panic): xs non-empty is asserted above, and the RNN preserves length
            Cell::Gru(cell) => *cell.forward(g, &xs).last().expect("non-empty"),
            // lint: allow(panic): xs non-empty is asserted above, and the RNN preserves length
            Cell::Lstm(cell) => *cell.forward(g, &xs).last().expect("non-empty"),
        };
        self.out.forward(g, last)
    }

    /// The l/u probability of one stay point's feature sequence.
    pub fn stay_probability(&self, seq: &Matrix) -> f32 {
        let mut g = Graph::new(&self.params);
        let z = self.logit(&mut g, seq);
        let p = g.sigmoid(z);
        g.value(p).at(0, 0)
    }

    /// Detects the loaded trajectory of a raw trajectory; `None` when fewer
    /// than two stay points are extracted.
    pub fn detect(&self, raw: &Trajectory, poi_db: &PoiDatabase) -> Option<SpDetection> {
        let processed = ProcessedTrajectory::from_raw(raw, &self.lead_config);
        let n = processed.num_stay_points();
        if n < 2 {
            return None;
        }
        let mut fx = FeatureExtractor::new(poi_db, &self.lead_config, self.use_poi);
        fx.set_normalizer(self.normalizer.clone());
        let flags: Vec<bool> = processed
            .stay_points
            .iter()
            .map(|sp| {
                let seq = fx.range_features(&processed, sp.start, sp.end);
                self.stay_probability(&seq) >= self.rnn_config.threshold
            })
            .collect();
        let (loading, unloading) = greedy_assemble(n, &flags);
        Some(SpDetection {
            processed,
            loading,
            unloading,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_core::label::TruthLabel;
    use lead_core::poi::{Poi, PoiCategory};
    use lead_geo::distance::meters_to_lng_deg;
    use lead_geo::GpsPoint;

    /// A minimal world: two trajectories with dwells at factory sites and at
    /// a plain location.
    fn tiny_world() -> (Vec<TrainSample>, PoiDatabase) {
        let per_km = meters_to_lng_deg(1_000.0, 32.0);
        let mk_raw = |offset: f64| {
            let mut pts = Vec::new();
            let mut t = 0;
            for block in 0..3 {
                let lng = 120.9 + offset + block as f64 * 5.0 * per_km;
                for _ in 0..10 {
                    pts.push(GpsPoint::new(32.0, lng, t));
                    t += 120;
                }
                for k in 1..=3 {
                    pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
                    t += 120;
                }
            }
            Trajectory::new(pts)
        };
        let truth = TruthLabel {
            load_start_s: 0,
            load_end_s: 1_080,
            unload_start_s: 1_560,
            unload_end_s: 2_640,
        };
        let samples: Vec<TrainSample> = (0..3)
            .map(|i| TrainSample {
                raw: mk_raw(i as f64 * 0.0001),
                truth,
            })
            .collect();
        let pois = vec![
            Poi {
                lat: 32.0,
                lng: 120.9,
                category: PoiCategory::ChemicalFactory,
            },
            Poi {
                lat: 32.0,
                lng: 120.9 + 5.0 * per_km,
                category: PoiCategory::Factory,
            },
            Poi {
                lat: 32.0,
                lng: 120.9 + 10.0 * per_km,
                category: PoiCategory::Restaurant,
            },
        ];
        (samples, PoiDatabase::new(pois))
    }

    #[test]
    fn fit_and_detect_run_end_to_end() {
        let (samples, db) = tiny_world();
        let cfg = LeadConfig::fast_test();
        for kind in [RnnKind::Gru, RnnKind::Lstm] {
            let (model, curve) = SpRnn::fit(kind, &samples, &db, &cfg, &SpRnnConfig::fast_test());
            assert!(!curve.is_empty());
            assert!(curve.iter().all(|l| l.is_finite()));
            let det = model.detect(&samples[0].raw, &db).unwrap();
            assert!(det.loading < det.unloading);
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn training_reduces_bce_with_more_epochs() {
        let (samples, db) = tiny_world();
        let mut cfg = LeadConfig::fast_test();
        cfg.learning_rate = 3e-3;
        cfg.batch_accumulation = 4;
        let rc = SpRnnConfig {
            hidden: 12,
            max_epochs: 12,
            threshold: 0.5,
        };
        let (_, curve) = SpRnn::fit(RnnKind::Gru, &samples, &db, &cfg, &rc);
        assert!(
            curve.last().unwrap() < &curve[0],
            "BCE should fall: {curve:?}"
        );
    }
}
