//! The SP-R whitelist: loading and unloading locations harvested from the
//! training set's archived loaded trajectories.

use lead_core::config::LeadConfig;
use lead_core::label::truth_stay_indices;
use lead_core::pipeline::TrainSample;
use lead_core::processing::ProcessedTrajectory;
use lead_geo::{haversine_m, GridIndex};

/// A set of known loading/unloading locations with radius membership queries.
#[derive(Debug, Clone)]
pub struct Whitelist {
    locations: Vec<(f64, f64)>,
    index: GridIndex<()>,
}

impl Whitelist {
    /// Builds the whitelist from the training set: both ends (the loading and
    /// unloading stay-point centroids) of every archived loaded trajectory.
    pub fn from_training(samples: &[TrainSample], config: &LeadConfig) -> Self {
        let mut locations = Vec::new();
        for s in samples {
            let proc = ProcessedTrajectory::from_raw(&s.raw, config);
            if let Some((l, u)) = truth_stay_indices(&proc, &s.truth) {
                for sp_idx in [l, u] {
                    let sp = &proc.stay_points[sp_idx];
                    if let Some(c) = proc.cleaned.slice(sp.start, sp.end).centroid() {
                        locations.push(c);
                    }
                }
            }
        }
        Self::from_locations(locations)
    }

    /// Builds a whitelist from explicit `(lat, lng)` locations.
    pub fn from_locations(locations: Vec<(f64, f64)>) -> Self {
        let items = locations.iter().map(|&(lat, lng)| (lat, lng, ())).collect();
        Self {
            index: GridIndex::build(items, 500.0),
            locations,
        }
    }

    /// Number of stored locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the whitelist is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Whether any whitelisted location lies within `radius_m` of
    /// `(lat, lng)`, by scanning every location.
    ///
    /// This is the paper's SP-R behaviour ("it needs to traverse all the
    /// locations of white list when classifying a stay point") and the reason
    /// SP-R is the slowest method in Figure 8.
    pub fn contains_near_scan(&self, lat: f64, lng: f64, radius_m: f64) -> bool {
        self.locations
            .iter()
            .any(|&(plat, plng)| haversine_m(lat, lng, plat, plng) <= radius_m)
    }

    /// Whether any whitelisted location lies within `radius_m`, via the grid
    /// index — the engineering fix the paper's SP-R lacks; benchmarked in the
    /// `poi_index` ablation.
    pub fn contains_near_indexed(&self, lat: f64, lng: f64, radius_m: f64) -> bool {
        self.index.nearest_within(lat, lng, radius_m).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::distance::meters_to_lng_deg;

    fn wl() -> Whitelist {
        Whitelist::from_locations(vec![(32.0, 120.9), (32.1, 121.0), (31.95, 120.85)])
    }

    #[test]
    fn near_location_is_found() {
        let w = wl();
        let dlng = meters_to_lng_deg(300.0, 32.0);
        assert!(w.contains_near_scan(32.0, 120.9 + dlng, 500.0));
        assert!(w.contains_near_indexed(32.0, 120.9 + dlng, 500.0));
    }

    #[test]
    fn far_location_is_not_found() {
        let w = wl();
        assert!(!w.contains_near_scan(32.5, 120.5, 500.0));
        assert!(!w.contains_near_indexed(32.5, 120.5, 500.0));
    }

    #[test]
    fn scan_and_index_agree_on_a_grid_of_queries() {
        let w = wl();
        for i in 0..20 {
            for j in 0..20 {
                let lat = 31.9 + i as f64 * 0.012;
                let lng = 120.8 + j as f64 * 0.012;
                assert_eq!(
                    w.contains_near_scan(lat, lng, 500.0),
                    w.contains_near_indexed(lat, lng, 500.0),
                    "disagreement at ({lat}, {lng})"
                );
            }
        }
    }

    #[test]
    fn empty_whitelist_finds_nothing() {
        let w = Whitelist::from_locations(Vec::new());
        assert!(w.is_empty());
        assert!(!w.contains_near_scan(32.0, 120.9, 500.0));
        assert!(!w.contains_near_indexed(32.0, 120.9, 500.0));
    }
}
