//! SP-R: the rule-based whitelist baseline (Section VI-A, Baselines (1)).

use crate::greedy::{greedy_assemble, SpDetection};
use crate::whitelist::Whitelist;
use lead_core::config::LeadConfig;
use lead_core::pipeline::TrainSample;
use lead_core::processing::ProcessedTrajectory;
use lead_geo::Trajectory;

/// The SP-R detector: a stay point is a potential l/u stay point iff a
/// whitelisted location lies within the 500 m search radius; the greedy
/// first/last strategy then assembles the loaded trajectory.
#[derive(Debug, Clone)]
pub struct SpR {
    whitelist: Whitelist,
    config: LeadConfig,
    /// Search radius around each stay point (paper: 500 m).
    pub search_radius_m: f64,
    /// Use the grid index instead of the paper's linear scan (off by
    /// default; exists for the efficiency ablation).
    pub use_index: bool,
}

impl SpR {
    /// Builds SP-R from the training archive.
    pub fn fit(samples: &[TrainSample], config: &LeadConfig) -> Self {
        Self {
            whitelist: Whitelist::from_training(samples, config),
            config: config.clone(),
            search_radius_m: 500.0,
            use_index: false,
        }
    }

    /// Builds SP-R from an explicit whitelist (testing).
    pub fn with_whitelist(whitelist: Whitelist, config: &LeadConfig) -> Self {
        Self {
            whitelist,
            config: config.clone(),
            search_radius_m: 500.0,
            use_index: false,
        }
    }

    /// The underlying whitelist.
    pub fn whitelist(&self) -> &Whitelist {
        &self.whitelist
    }

    /// Detects the loaded trajectory; `None` when fewer than two stay points
    /// are extracted.
    pub fn detect(&self, raw: &Trajectory) -> Option<SpDetection> {
        let processed = ProcessedTrajectory::from_raw(raw, &self.config);
        let n = processed.num_stay_points();
        if n < 2 {
            return None;
        }
        let flags: Vec<bool> = processed
            .stay_points
            .iter()
            .map(|sp| {
                // A stay point with no member points has no centroid and can
                // never match the whitelist.
                let Some((lat, lng)) = processed.cleaned.slice(sp.start, sp.end).centroid() else {
                    return false;
                };
                if self.use_index {
                    self.whitelist
                        .contains_near_indexed(lat, lng, self.search_radius_m)
                } else {
                    self.whitelist
                        .contains_near_scan(lat, lng, self.search_radius_m)
                }
            })
            .collect();
        let (loading, unloading) = greedy_assemble(n, &flags);
        Some(SpDetection {
            processed,
            loading,
            unloading,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::distance::meters_to_lng_deg;
    use lead_geo::GpsPoint;

    /// Four dwells at 0 / 5 / 10 / 15 km east, 20 minutes each.
    fn four_stop_raw() -> Trajectory {
        let per_km = meters_to_lng_deg(1_000.0, 32.0);
        let mut pts = Vec::new();
        let mut t = 0;
        for block in 0..4 {
            let lng = 120.9 + block as f64 * 5.0 * per_km;
            for _ in 0..10 {
                pts.push(GpsPoint::new(32.0, lng, t));
                t += 120;
            }
            for k in 1..=3 {
                pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
                t += 120;
            }
        }
        Trajectory::new(pts)
    }

    fn stop_latlng(block: usize) -> (f64, f64) {
        (
            32.0,
            120.9 + block as f64 * 5.0 * meters_to_lng_deg(1_000.0, 32.0),
        )
    }

    #[test]
    fn whitelisted_stops_are_detected() {
        // Whitelist covers stops 1 and 2 → loaded trajectory ⟨sp_1 --→ sp_2⟩.
        let wl = Whitelist::from_locations(vec![stop_latlng(1), stop_latlng(2)]);
        let spr = SpR::with_whitelist(wl, &LeadConfig::paper());
        let det = spr.detect(&four_stop_raw()).unwrap();
        assert_eq!((det.loading, det.unloading), (1, 2));
        assert_eq!(det.candidate().start_sp, 1);
    }

    #[test]
    fn uncovered_stops_trigger_default_fallback() {
        let wl = Whitelist::from_locations(vec![(40.0, 110.0)]); // nowhere near
        let spr = SpR::with_whitelist(wl, &LeadConfig::paper());
        let det = spr.detect(&four_stop_raw()).unwrap();
        assert_eq!((det.loading, det.unloading), (0, 3)); // default
    }

    #[test]
    fn single_covered_stop_also_falls_back() {
        let wl = Whitelist::from_locations(vec![stop_latlng(2)]);
        let spr = SpR::with_whitelist(wl, &LeadConfig::paper());
        let det = spr.detect(&four_stop_raw()).unwrap();
        assert_eq!((det.loading, det.unloading), (0, 3));
    }

    #[test]
    fn index_and_scan_modes_agree() {
        let wl = Whitelist::from_locations(vec![stop_latlng(0), stop_latlng(3)]);
        let mut spr = SpR::with_whitelist(wl, &LeadConfig::paper());
        let a = spr.detect(&four_stop_raw()).unwrap();
        spr.use_index = true;
        let b = spr.detect(&four_stop_raw()).unwrap();
        assert_eq!((a.loading, a.unloading), (b.loading, b.unloading));
    }

    #[test]
    fn too_few_stay_points_returns_none() {
        let wl = Whitelist::from_locations(vec![stop_latlng(0)]);
        let spr = SpR::with_whitelist(wl, &LeadConfig::paper());
        let short = Trajectory::new(vec![
            GpsPoint::new(32.0, 120.9, 0),
            GpsPoint::new(32.0, 120.95, 120),
        ]);
        assert!(spr.detect(&short).is_none());
    }
}
