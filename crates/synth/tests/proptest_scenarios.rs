//! Property tests over the GPS pathology scenarios (ISSUE 6 tentpole):
//! every generator must be bit-reproducible from its seeds, and every
//! pathological trajectory it emits must keep the streaming stay-point
//! extractor equivalent to the batch one after noise filtering — the
//! scenarios exist precisely to stress the edge cases (gaps, skew, jumps,
//! sparse rates, long multi-leg days) where the two paths could diverge.

use lead_core::processing::{extract_stay_points, filter_noise};
use lead_core::streaming::IncrementalStayExtractor;
use lead_synth::{
    generate_scenario_dataset, Dataset, Sample, ScenarioConfig, ScenarioKind, SynthConfig,
};
use proptest::prelude::*;

/// A world small enough to regenerate many times per property case.
fn small_base(world_seed: u64) -> SynthConfig {
    let mut base = SynthConfig::tiny();
    base.seed = world_seed;
    base.num_trucks = 10;
    base.days_per_truck = 1;
    base
}

fn samples(ds: &Dataset) -> impl Iterator<Item = &Sample> {
    ds.train.iter().chain(&ds.val).chain(&ds.test)
}

fn assert_identical(a: &Dataset, b: &Dataset) {
    assert_eq!(a.len(), b.len());
    for (x, y) in samples(a).zip(samples(b)) {
        assert_eq!(x.truck_id, y.truck_id);
        assert_eq!(x.day, y.day);
        assert_eq!(
            x.raw, y.raw,
            "trajectories diverged for truck {}",
            x.truck_id
        );
        assert_eq!(x.truth, y.truth);
        assert_eq!(x.planned_stays, y.planned_stays);
    }
}

proptest! {
    /// (i) Seed determinism: the same `(world seed, scenario seed)` pair
    /// regenerates every scenario dataset bit-for-bit.
    #[test]
    fn every_scenario_regenerates_identically(
        world_seed in 0u64..1_000,
        scenario_seed in any::<u64>(),
    ) {
        let base = small_base(world_seed);
        for kind in ScenarioKind::ALL {
            let sc = ScenarioConfig::new(kind, scenario_seed);
            let a = generate_scenario_dataset(&base, &sc);
            let b = generate_scenario_dataset(&base, &sc);
            assert_identical(&a, &b);
        }
    }

    /// (ii) Batch/streaming equivalence after processing: for every
    /// pathological trajectory, incremental stay-point extraction over the
    /// noise-filtered stream reproduces the batch extraction exactly.
    #[test]
    fn scenarios_keep_streaming_equivalent_to_batch(
        world_seed in 0u64..1_000,
        scenario_seed in any::<u64>(),
    ) {
        let base = small_base(world_seed);
        let d_max = 500.0;
        let t_min = 900i64;
        for kind in ScenarioKind::ALL {
            let sc = ScenarioConfig::new(kind, scenario_seed);
            let ds = generate_scenario_dataset(&base, &sc);
            for s in samples(&ds) {
                let cleaned = filter_noise(&s.raw, 130.0);
                let batch = extract_stay_points(&cleaned, d_max, t_min as f64);

                let mut ex = IncrementalStayExtractor::new(d_max, t_min);
                let mut buffer = Vec::new();
                let mut streamed = Vec::new();
                for &p in cleaned.points() {
                    buffer.push(p);
                    streamed.extend(ex.on_point_appended(&buffer));
                }
                streamed.extend(ex.finish(&buffer));
                prop_assert!(
                    streamed == batch,
                    "streaming diverged from batch under {} (truck {}, day {}): {:?} vs {:?}",
                    kind.label(), s.truck_id, s.day, streamed, batch
                );
            }
        }
    }
}
