//! Configuration of the synthetic world.
//!
//! Every knob is explicit and the whole pipeline is deterministic given
//! `seed`. The defaults are shaped like the paper's Nantong deployment
//! (stay-point counts 3–14 with the paper's bucket mix, ~2-minute GPS
//! sampling, 130 km/h never exceeded) but scaled so that the full experiment
//! suite trains in minutes on a single CPU core.

/// All parameters of the synthetic city, fleet, and recording process.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Master RNG seed; everything downstream is deterministic in it.
    pub seed: u64,

    // ---- fleet / dataset ----------------------------------------------------
    /// Number of distinct HCT trucks (the paper has 2,734).
    pub num_trucks: usize,
    /// One-day raw trajectories per truck (the paper averages ~2.2).
    pub days_per_truck: usize,

    // ---- city ---------------------------------------------------------------
    /// City center `(lat, lng)`; defaults to Nantong.
    pub city_center: (f64, f64),
    /// Half-extent of the square city in meters.
    pub city_half_extent_m: f64,
    /// Radius of the urban core that loaded trucks must detour around
    /// (the paper's "prohibited from entering the main urban areas").
    pub urban_core_radius_m: f64,
    /// Number of industrial clusters hosting loading sites.
    pub num_industrial_zones: usize,
    /// Loading-capable sites (chemical factories, depots, ports, …).
    pub num_loading_sites: usize,
    /// Unloading-capable sites (factories, hospitals, construction sites, …).
    pub num_unloading_sites: usize,
    /// Fueling stations (both loading sites for fuel trucks and break spots).
    pub num_fueling_stations: usize,
    /// Break-friendly sites (restaurants, rest areas, parking lots, hotels).
    pub num_break_sites: usize,
    /// Truck depots (day start/end anchors).
    pub num_depots: usize,
    /// Background POIs with no role in itineraries (urban clutter).
    pub num_background_pois: usize,

    // ---- truck habits ---------------------------------------------------------
    /// Loading sites in each truck's personal pool `(min, max)`.
    pub loading_pool_per_truck: (usize, usize),
    /// Unloading sites in each truck's personal pool `(min, max)`.
    pub unloading_pool_per_truck: (usize, usize),
    /// Fraction of trucks that are fuel tankers loading at fueling stations
    /// (the paper's hardest staying scenario).
    pub fuel_truck_fraction: f64,

    // ---- itinerary -----------------------------------------------------------
    /// Probability weights of the paper's stay-point buckets
    /// 3–5 / 6–8 / 9–11 / 12–14 (Table III header: 22/34/25/19 %).
    pub bucket_weights: [f64; 4],
    /// Seconds after midnight when trucks may depart.
    pub day_start_s: (i64, i64),
    /// Dwell at the loading site `(min, max)` seconds.
    pub loading_dwell_s: (i64, i64),
    /// Dwell at the unloading site `(min, max)` seconds.
    pub unloading_dwell_s: (i64, i64),
    /// Dwell for ordinary breaks `(min, max)` seconds — above the 15-minute
    /// stay-point threshold so breaks *are* stay points (the challenge).
    pub break_dwell_s: (i64, i64),
    /// Probability that an ordinary break happens at a fueling station
    /// (instead of a restaurant/rest area), confusing stay-point classifiers.
    pub fueling_break_prob: f64,
    /// Fraction of break sites placed inside industrial zones, where their
    /// POI context (and possibly their 500 m neighbourhood) looks like a
    /// loading/unloading site — the paper's second confounder. 0 disables.
    pub industrial_break_fraction: f64,
    /// Probability of a sub-threshold micro-stop (traffic light, queue) per
    /// driving leg; these must *not* become stay points.
    pub micro_stop_prob: f64,
    /// Micro-stop dwell `(min, max)` seconds — below the 15-minute threshold.
    pub micro_stop_dwell_s: (i64, i64),
    /// Probability that the day carries a *second* process (reload → deliver)
    /// after the first unloading — the multi-leg confounder of the
    /// [`crate::scenario`] suite. The ground-truth label always describes the
    /// first process; the reload leg exists to distract detectors. 0 (the
    /// default) keeps the paper's one-process day shape.
    pub reload_leg_prob: f64,

    // ---- motion ----------------------------------------------------------------
    /// Empty-truck cruise speed range `(min, max)` in m/s (~50–80 km/h).
    pub base_speed_mps: (f64, f64),
    /// Speed multiplier while loaded with hazardous chemicals (heavier truck,
    /// stricter driving) — the moving-behaviour signal LEAD exploits.
    pub loaded_speed_factor: f64,
    /// Whether loaded trucks detour around the urban core.
    pub detour_when_loaded: bool,
    /// Standard deviation of the perpendicular road wobble in meters.
    pub path_wobble_m: f64,

    // ---- GPS recording ---------------------------------------------------------
    /// Nominal sampling interval in seconds (the paper reports ~2 minutes).
    pub gps_interval_s: i64,
    /// Uniform timestamp jitter `±` seconds (kept < interval/2 so order holds).
    pub gps_interval_jitter_s: i64,
    /// Standard deviation of Gaussian position noise in meters.
    pub gps_noise_std_m: f64,
    /// Per-point probability of an outlier spike.
    pub outlier_prob: f64,
    /// Outlier displacement `(min, max)` meters — large enough that the
    /// 130 km/h heuristic filter catches it at the sampling interval.
    pub outlier_shift_m: (f64, f64),
}

impl SynthConfig {
    /// The default experiment scale: large enough for the accuracy ordering
    /// of Table III to be stable, small enough to train all methods in
    /// minutes on one CPU core.
    pub fn paper_scaled() -> Self {
        Self {
            seed: 20220901, // the dataset's collection start date
            num_trucks: 150,
            days_per_truck: 3,
            city_center: (32.0, 120.9),
            city_half_extent_m: 20_000.0,
            urban_core_radius_m: 5_000.0,
            num_industrial_zones: 6,
            num_loading_sites: 48,
            num_unloading_sites: 140,
            num_fueling_stations: 60,
            num_break_sites: 240,
            num_depots: 30,
            num_background_pois: 2_600,
            loading_pool_per_truck: (1, 3),
            unloading_pool_per_truck: (2, 5),
            fuel_truck_fraction: 0.3,
            bucket_weights: [0.22, 0.34, 0.25, 0.19],
            day_start_s: (5 * 3600, 8 * 3600),
            loading_dwell_s: (1_500, 3_300),
            unloading_dwell_s: (1_500, 3_300),
            break_dwell_s: (1_100, 2_400),
            fueling_break_prob: 0.2,
            industrial_break_fraction: 0.5,
            micro_stop_prob: 0.35,
            micro_stop_dwell_s: (150, 540),
            reload_leg_prob: 0.0,
            base_speed_mps: (14.0, 22.0),
            loaded_speed_factor: 0.58,
            detour_when_loaded: true,
            path_wobble_m: 18.0,
            gps_interval_s: 120,
            gps_interval_jitter_s: 20,
            gps_noise_std_m: 9.0,
            outlier_prob: 0.004,
            outlier_shift_m: (6_000.0, 14_000.0),
        }
    }

    /// A miniature world for unit and integration tests (seconds to generate,
    /// enough structure to exercise every code path).
    pub fn tiny() -> Self {
        Self {
            num_trucks: 12,
            days_per_truck: 2,
            num_loading_sites: 10,
            num_unloading_sites: 24,
            num_fueling_stations: 12,
            num_break_sites: 40,
            num_depots: 6,
            num_background_pois: 300,
            ..Self::paper_scaled()
        }
    }

    /// Total number of one-day samples the generator will emit.
    pub fn total_samples(&self) -> usize {
        self.num_trucks * self.days_per_truck
    }

    /// Validates internal consistency; called by the generator.
    ///
    /// # Panics
    /// Panics with a description of the first violated constraint.
    pub fn validate(&self) {
        assert!(self.num_trucks >= 10, "need ≥10 trucks for a 8:1:1 split");
        assert!(self.days_per_truck >= 1, "days_per_truck must be ≥1");
        assert!(
            self.city_half_extent_m > 2.0 * self.urban_core_radius_m,
            "city must extend beyond the urban core"
        );
        assert!(
            self.num_loading_sites >= 2 && self.num_unloading_sites >= 2,
            "need at least two sites of each kind"
        );
        let wsum: f64 = self.bucket_weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-6, "bucket weights must sum to 1");
        assert!(
            self.loading_dwell_s.0 <= self.loading_dwell_s.1,
            "inverted loading dwell"
        );
        assert!(
            self.break_dwell_s.0 >= 930,
            "breaks must exceed the 15-minute stay threshold (plus slack)"
        );
        assert!(
            self.micro_stop_dwell_s.1 < 800,
            "micro-stops must stay below the 15-minute stay threshold"
        );
        assert!(
            (0.0..=1.0).contains(&self.fueling_break_prob),
            "invalid fueling break prob"
        );
        assert!(
            (0.0..=1.0).contains(&self.industrial_break_fraction),
            "invalid industrial break fraction"
        );
        assert!(
            (0.0..=1.0).contains(&self.reload_leg_prob),
            "invalid reload leg prob"
        );
        assert!(
            self.base_speed_mps.0 > 0.0 && self.base_speed_mps.1 >= self.base_speed_mps.0,
            "invalid speed range"
        );
        assert!(
            self.base_speed_mps.1 * 3.6 < 130.0,
            "cruise speed must stay under the 130 km/h noise-filter threshold"
        );
        assert!(
            (0.0..=1.0).contains(&self.loaded_speed_factor),
            "invalid loaded factor"
        );
        assert!(
            self.gps_interval_s > 0,
            "sampling interval must be positive"
        );
        assert!(
            self.gps_interval_jitter_s * 2 < self.gps_interval_s,
            "timestamp jitter would break chronological order"
        );
        assert!(
            self.outlier_shift_m.0 / self.gps_interval_s as f64 * 3.6 > 140.0,
            "outliers must imply speeds above the 130 km/h filter threshold"
        );
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SynthConfig::paper_scaled().validate();
        SynthConfig::tiny().validate();
    }

    #[test]
    fn total_samples_is_product() {
        let c = SynthConfig::tiny();
        assert_eq!(c.total_samples(), c.num_trucks * c.days_per_truck);
    }

    #[test]
    #[should_panic(expected = "bucket weights")]
    fn bad_bucket_weights_rejected() {
        let mut c = SynthConfig::tiny();
        c.bucket_weights = [0.5, 0.5, 0.5, 0.5];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "130 km/h")]
    fn overspeed_rejected() {
        let mut c = SynthConfig::tiny();
        c.base_speed_mps = (14.0, 40.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "15-minute")]
    fn long_micro_stops_rejected() {
        let mut c = SynthConfig::tiny();
        c.micro_stop_dwell_s = (150, 1_000);
        c.validate();
    }
}
