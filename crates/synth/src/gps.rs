//! GPS recording: converts a noiseless local-meter track into WGS84 points
//! with sensor noise and occasional large outlier spikes.
//!
//! The outliers reproduce the paper's Figure 3(a): isolated points "several
//! hundred meters [to kilometers] away from their true locations" that the
//! 130 km/h heuristic filter must remove. At a 2-minute cadence only
//! multi-kilometer spikes imply super-threshold speeds, so outliers here
//! displace by `outlier_shift_m` (≥ 6 km by default).

use crate::config::SynthConfig;
use crate::motion::TrackPoint;
use crate::rand_util::{randn, uniform_f64};
use lead_geo::{GpsPoint, LocalProjection, Trajectory};
use rand::Rng;

/// Records `track` through a noisy GPS sensor, returning a raw trajectory.
pub fn record<R: Rng>(
    config: &SynthConfig,
    proj: &LocalProjection,
    track: &[TrackPoint],
    rng: &mut R,
) -> Trajectory {
    let mut points = Vec::with_capacity(track.len());
    for p in track {
        let (mut x, mut y) = (p.x, p.y);
        // Baseline sensor noise.
        x += randn(rng) * config.gps_noise_std_m;
        y += randn(rng) * config.gps_noise_std_m;
        // Rare outlier spike.
        if rng.gen_bool(config.outlier_prob) {
            let shift = uniform_f64(rng, config.outlier_shift_m);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            x += shift * angle.cos();
            y += shift * angle.sin();
        }
        let (lat, lng) = proj.to_latlng(x, y);
        points.push(GpsPoint::new(lat, lng, p.t));
    }
    Trajectory::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_track(n: usize) -> Vec<TrackPoint> {
        (0..n)
            .map(|i| TrackPoint {
                x: i as f64 * 100.0,
                y: 0.0,
                t: i as i64 * 120,
                staying: false,
            })
            .collect()
    }

    #[test]
    fn record_preserves_length_and_order() {
        let cfg = SynthConfig::tiny();
        let proj = LocalProjection::new(32.0, 120.9);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let tr = record(&cfg, &proj, &straight_track(50), &mut rng);
        assert_eq!(tr.len(), 50);
        assert!(tr.points().windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn noise_is_bounded_without_outliers() {
        let mut cfg = SynthConfig::tiny();
        cfg.outlier_prob = 0.0;
        let proj = LocalProjection::new(32.0, 120.9);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let track = straight_track(200);
        let tr = record(&cfg, &proj, &track, &mut rng);
        for (p, t) in tr.points().iter().zip(track.iter()) {
            let (lat0, lng0) = proj.to_latlng(t.x, t.y);
            let d = lead_geo::haversine_m(p.lat, p.lng, lat0, lng0);
            assert!(d < cfg.gps_noise_std_m * 6.0, "noise {d} m");
        }
    }

    #[test]
    fn outliers_appear_at_configured_rate() {
        let mut cfg = SynthConfig::tiny();
        cfg.outlier_prob = 0.05;
        let proj = LocalProjection::new(32.0, 120.9);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let track = straight_track(4_000);
        let tr = record(&cfg, &proj, &track, &mut rng);
        let mut outliers = 0;
        for (p, t) in tr.points().iter().zip(track.iter()) {
            let (lat0, lng0) = proj.to_latlng(t.x, t.y);
            if lead_geo::haversine_m(p.lat, p.lng, lat0, lng0) > 3_000.0 {
                outliers += 1;
            }
        }
        let rate = outliers as f64 / track.len() as f64;
        assert!((rate - 0.05).abs() < 0.02, "outlier rate {rate}");
    }
}
