//! Binary shard export of synthetic datasets.
//!
//! Bridges [`crate::dataset::Sample`] to the `lead-data` labelled-sample
//! container, preserving the generator-side metadata (`truck_id`, `day`,
//! `planned_stays`) that [`lead_core::source`]'s training-only helpers drop.
//! Shards written here are readable by
//! [`lead_core::source::BinarySampleShards`] for constant-memory training
//! and by [`read_sample_shards`] for full-fidelity round-trips.

use crate::dataset::Sample;
use lead_core::TruthLabel;
use lead_data::records::{LabeledSampleReader, LabeledSampleRecord, LabeledSampleWriter};
use lead_data::DataError;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// Converts one synthetic sample to its on-disk record form.
fn sample_to_record(s: &Sample) -> LabeledSampleRecord {
    LabeledSampleRecord {
        truck_id: s.truck_id,
        day: s.day,
        planned_stays: s.planned_stays as u32,
        truth_s: [
            s.truth.load_start_s,
            s.truth.load_end_s,
            s.truth.unload_start_s,
            s.truth.unload_end_s,
        ],
        trajectory: s.raw.clone(),
    }
}

/// Converts one decoded record back to the synthetic sample form.
fn record_to_sample(rec: LabeledSampleRecord) -> Sample {
    let [load_start_s, load_end_s, unload_start_s, unload_end_s] = rec.truth_s;
    Sample {
        truck_id: rec.truck_id,
        day: rec.day,
        planned_stays: rec.planned_stays as usize,
        raw: rec.trajectory,
        truth: TruthLabel {
            load_start_s,
            load_end_s,
            unload_start_s,
            unload_end_s,
        },
    }
}

/// Writes `samples` as binary shard files `STEM-00000.leadbin`,
/// `STEM-00001.leadbin`, … under `dir` (created if missing), at most
/// `shard_size` samples per file (clamped to at least 1), returning the
/// shard paths in order. An empty dataset still yields one empty shard so
/// readers have a valid container to open.
///
/// # Errors
///
/// [`DataError::Io`] on directory or file I/O failure; any container-write
/// error from the record layer.
pub fn write_sample_shards(
    samples: &[Sample],
    dir: &Path,
    stem: &str,
    shard_size: usize,
) -> Result<Vec<PathBuf>, DataError> {
    std::fs::create_dir_all(dir)?;
    let shard_size = shard_size.max(1);
    let write_shard = |index: usize, chunk: &[Sample]| -> Result<PathBuf, DataError> {
        let path = dir.join(format!("{stem}-{index:05}.leadbin"));
        let file = File::create(&path)?;
        let mut writer = LabeledSampleWriter::new(BufWriter::new(file))?;
        for s in chunk {
            writer.write(&sample_to_record(s))?;
        }
        writer.finish()?;
        Ok(path)
    };
    let mut paths = Vec::new();
    for (i, chunk) in samples.chunks(shard_size).enumerate() {
        paths.push(write_shard(i, chunk)?);
    }
    if paths.is_empty() {
        paths.push(write_shard(0, &[])?);
    }
    Ok(paths)
}

/// Reads shard files back into samples, concatenated in shard order.
///
/// # Errors
///
/// Any container-read, checksum, or decode error from the shard files.
pub fn read_sample_shards<P: AsRef<Path>>(paths: &[P]) -> Result<Vec<Sample>, DataError> {
    let mut out = Vec::new();
    for p in paths {
        let file = File::open(p.as_ref())?;
        let mut reader = LabeledSampleReader::new(BufReader::new(file))?;
        while let Some(rec) = reader.next_record()? {
            out.push(record_to_sample(rec));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use crate::dataset::generate_dataset;

    #[test]
    fn shards_round_trip_samples_bitwise() {
        let cfg = SynthConfig {
            num_trucks: 10,
            ..SynthConfig::default()
        };
        let ds = generate_dataset(&cfg);
        assert!(!ds.train.is_empty());
        let dir = std::env::temp_dir().join("lead-synth-binio-test");
        let paths = write_sample_shards(&ds.train, &dir, "train", 2).unwrap();
        assert_eq!(paths.len(), ds.train.len().div_ceil(2));
        let back = read_sample_shards(&paths).unwrap();
        assert_eq!(back.len(), ds.train.len());
        for (a, b) in ds.train.iter().zip(&back) {
            assert_eq!(a.truck_id, b.truck_id);
            assert_eq!(a.day, b.day);
            assert_eq!(a.planned_stays, b.planned_stays);
            assert_eq!(a.truth, b.truth);
            assert_eq!(a.raw.points().len(), b.raw.points().len());
            for (p, q) in a.raw.points().iter().zip(b.raw.points()) {
                assert_eq!(p.lat.to_bits(), q.lat.to_bits());
                assert_eq!(p.lng.to_bits(), q.lng.to_bits());
                assert_eq!(p.t, q.t);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dataset_writes_one_empty_shard() {
        let dir = std::env::temp_dir().join("lead-synth-binio-empty-test");
        let paths = write_sample_shards(&[], &dir, "empty", 4).unwrap();
        assert_eq!(paths.len(), 1);
        assert!(read_sample_shards(&paths).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
