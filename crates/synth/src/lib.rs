//! Synthetic HCT world: the substitute for the paper's proprietary Nantong
//! dataset.
//!
//! The paper evaluates on 5,968 one-day raw trajectories of 2,734 HCT trucks
//! collected in Nantong, China, with government-labelled loaded trajectories
//! and a database of 415,639 POIs in 29 categories. None of that is public, so
//! this crate generates a city and a fleet that reproduce the *difficulty
//! drivers* the paper names:
//!
//! 1. **Complex staying scenarios** — trucks take ordinary breaks at the same
//!    POI types where loading/unloading happens (fueling stations,
//!    restaurants next to industrial parks), so a stay point alone does not
//!    reveal the activity; the *moving behaviour* around it (lower loaded
//!    speeds, urban-core detours) does.
//! 2. **Numerous loading/unloading locations** — l/u sites are drawn from
//!    large pools and the test fleet (disjoint trucks) visits sites absent
//!    from the training data, so whitelist methods cannot cover them.
//!
//! Modules: [`poi`] (29-category POI database), [`city`] (urban layout),
//! [`itinerary`] (three-phase day plans with confounders), [`motion`]
//! (kinematic simulation with loaded-phase signatures), [`gps`] (sampling
//! noise and outlier spikes), [`dataset`] (labelled samples and disjoint-truck
//! splits), [`config`] (all knobs, seeded and deterministic), [`scenario`]
//! (named adversarial recording pathologies behind seeded configs),
//! [`binio`] (binary shard export in the `lead-data` container format).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binio;
pub mod city;
pub mod config;
pub mod dataset;
pub mod gps;
pub mod itinerary;
pub mod motion;
pub(crate) mod rand_util;
pub mod scenario;
pub mod stats;

/// Re-export of the POI model from `lead-core` (the 29-category taxonomy is
/// part of the paper's method; the synthetic city only populates it).
pub mod poi {
    pub use lead_core::poi::*;
}

pub use binio::{read_sample_shards, write_sample_shards};
pub use city::City;
pub use config::SynthConfig;
pub use dataset::{generate_dataset, Dataset, Sample, TruthLabel};
pub use poi::{Poi, PoiCategory, PoiDatabase, PoiRole, NUM_POI_CATEGORIES};
pub use scenario::{generate_scenario_dataset, ScenarioConfig, ScenarioKind};
