//! Named GPS pathologies: adversarial recording scenarios layered over the
//! clean generator.
//!
//! Real fleets do not record the tidy feeds of [`crate::gps::record`]. This
//! module names the pathologies observed in deployment and injects each one
//! behind a seeded [`ScenarioConfig`], so every scenario dataset is
//! bit-reproducible and the evaluation harness can report accuracy *per
//! scenario* instead of averaging the hard cases away:
//!
//! - [`ScenarioKind::TunnelDropout`] — tunnels and urban canyons blank the
//!   receiver for minutes; contiguous runs of fixes disappear.
//! - [`ScenarioKind::ClockSkew`] — the device clock runs offset from true
//!   time, and occasional fixes carry timestamps *behind* their predecessors;
//!   ingest drops the out-of-order fixes (mirroring the CSV reader, which
//!   rejects non-increasing timestamps) and the surviving timeline is shifted
//!   against the ground-truth labels.
//! - [`ScenarioKind::SpoofJump`] — a spoofing-like run of fixes displaced by
//!   a common multi-kilometer offset. Unlike the isolated outlier spikes of
//!   [`crate::gps::record`], the run is *internally consistent*, so the
//!   130 km/h heuristic only sees the two jump edges.
//! - [`ScenarioKind::MixedRates`] — heterogeneous hardware: each truck
//!   samples at its own interval between 5 s and 120 s.
//! - [`ScenarioKind::MultiLeg`] — the day carries a second load → unload
//!   process (reload leg) after the labelled one, so detectors face two
//!   plausible loaded trajectories.
//! - [`ScenarioKind::Baseline`] — the unmodified generator, as the control
//!   row of every scenario table.

use crate::config::SynthConfig;
use crate::dataset::{generate_dataset, Dataset, Sample};
use lead_geo::{GpsPoint, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named recording pathology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// The unmodified generator (control).
    Baseline,
    /// Contiguous fix dropouts (tunnels, urban canyons).
    TunnelDropout,
    /// Constant device-clock offset plus out-of-order fixes.
    ClockSkew,
    /// Spoofing-like displaced runs of fixes.
    SpoofJump,
    /// Per-truck sampling intervals between 5 s and 120 s.
    MixedRates,
    /// A second load → unload process after the labelled one.
    MultiLeg,
}

impl ScenarioKind {
    /// All scenarios in canonical (reporting) order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::Baseline,
        ScenarioKind::TunnelDropout,
        ScenarioKind::ClockSkew,
        ScenarioKind::SpoofJump,
        ScenarioKind::MixedRates,
        ScenarioKind::MultiLeg,
    ];

    /// Dense index 0..6, matching [`ScenarioKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            ScenarioKind::Baseline => 0,
            ScenarioKind::TunnelDropout => 1,
            ScenarioKind::ClockSkew => 2,
            ScenarioKind::SpoofJump => 3,
            ScenarioKind::MixedRates => 4,
            ScenarioKind::MultiLeg => 5,
        }
    }

    /// Stable kebab-case label used in tables, CSVs, and bench names.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Baseline => "baseline",
            ScenarioKind::TunnelDropout => "tunnel-dropout",
            ScenarioKind::ClockSkew => "clock-skew",
            ScenarioKind::SpoofJump => "spoof-jump",
            ScenarioKind::MixedRates => "mixed-rates",
            ScenarioKind::MultiLeg => "multi-leg",
        }
    }
}

/// All knobs of one scenario, seeded: the same `(kind, seed, knobs)` always
/// produces byte-identical datasets.
///
/// The scenario RNG stream is independent of [`SynthConfig::seed`]: each
/// sample's pathology is seeded by `(seed, truck_id, day)`, so injecting a
/// scenario never perturbs the underlying clean world.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which pathology to inject.
    pub kind: ScenarioKind,
    /// Master seed of the injection RNG stream.
    pub seed: u64,

    // ---- tunnel-dropout ------------------------------------------------------
    /// Dropout windows per day `(min, max)`.
    pub dropouts_per_day: (usize, usize),
    /// Length of one dropout window `(min, max)` seconds.
    pub dropout_gap_s: (i64, i64),

    // ---- clock-skew ----------------------------------------------------------
    /// Magnitude of the constant device-clock offset `(min, max)` seconds;
    /// the sign is drawn per day.
    pub skew_offset_s: (i64, i64),
    /// Per-fix probability of an out-of-order timestamp.
    pub backward_jitter_prob: f64,
    /// How far an out-of-order fix falls behind its predecessor
    /// `(min, max)` seconds.
    pub backward_jitter_s: (i64, i64),

    // ---- spoof-jump ----------------------------------------------------------
    /// Per-day probability that a spoofed run occurs.
    pub spoof_prob: f64,
    /// Run length `(min, max)` fixes.
    pub spoof_run: (usize, usize),
    /// Common displacement of the run `(min, max)` meters.
    pub spoof_shift_m: (f64, f64),

    // ---- mixed-rates ---------------------------------------------------------
    /// Per-truck sampling interval range `(min, max)` seconds.
    pub rate_range_s: (i64, i64),

    // ---- multi-leg -----------------------------------------------------------
    /// Probability of the reload leg (forwarded to
    /// [`SynthConfig::reload_leg_prob`]).
    pub reload_leg_prob: f64,
}

impl ScenarioConfig {
    /// The default knobs for `kind`, calibrated so each pathology is severe
    /// enough to move detection metrics but never degenerates a day into an
    /// unusable trajectory.
    pub fn new(kind: ScenarioKind, seed: u64) -> Self {
        ScenarioConfig {
            kind,
            seed,
            dropouts_per_day: (1, 3),
            dropout_gap_s: (300, 1_500),
            skew_offset_s: (45, 240),
            backward_jitter_prob: 0.03,
            backward_jitter_s: (130, 400),
            spoof_prob: 0.7,
            spoof_run: (3, 8),
            spoof_shift_m: (3_000.0, 8_000.0),
            rate_range_s: (5, 120),
            reload_leg_prob: 0.8,
        }
    }

    /// Validates internal consistency; called by the generator.
    ///
    /// # Panics
    /// Panics with a description of the first violated constraint.
    pub fn validate(&self) {
        assert!(
            self.dropouts_per_day.0 >= 1 && self.dropouts_per_day.0 <= self.dropouts_per_day.1,
            "invalid dropouts_per_day"
        );
        assert!(
            self.dropout_gap_s.0 > 0 && self.dropout_gap_s.0 <= self.dropout_gap_s.1,
            "invalid dropout_gap_s"
        );
        assert!(
            self.skew_offset_s.0 >= 0 && self.skew_offset_s.0 <= self.skew_offset_s.1,
            "invalid skew_offset_s"
        );
        assert!(
            (0.0..=1.0).contains(&self.backward_jitter_prob),
            "invalid backward_jitter_prob"
        );
        assert!(
            self.backward_jitter_s.0 > 0 && self.backward_jitter_s.0 <= self.backward_jitter_s.1,
            "invalid backward_jitter_s"
        );
        assert!((0.0..=1.0).contains(&self.spoof_prob), "invalid spoof_prob");
        assert!(
            self.spoof_run.0 >= 1 && self.spoof_run.0 <= self.spoof_run.1,
            "invalid spoof_run"
        );
        assert!(
            self.spoof_shift_m.0 > 0.0 && self.spoof_shift_m.0 <= self.spoof_shift_m.1,
            "invalid spoof_shift_m"
        );
        assert!(
            self.rate_range_s.0 >= 1 && self.rate_range_s.0 <= self.rate_range_s.1,
            "invalid rate_range_s"
        );
        assert!(
            (0.0..=1.0).contains(&self.reload_leg_prob),
            "invalid reload_leg_prob"
        );
    }
}

/// Generates the dataset of one scenario: the clean world of `base` with the
/// pathology of `scenario` injected. Deterministic in
/// `(base.seed, scenario.seed)`.
pub fn generate_scenario_dataset(base: &SynthConfig, scenario: &ScenarioConfig) -> Dataset {
    scenario.validate();
    match scenario.kind {
        ScenarioKind::Baseline => generate_dataset(base),
        ScenarioKind::TunnelDropout | ScenarioKind::ClockSkew | ScenarioKind::SpoofJump => {
            let mut ds = generate_dataset(base);
            for sample in samples_mut(&mut ds) {
                transform_sample(sample, scenario);
            }
            ds
        }
        ScenarioKind::MixedRates => {
            // Generate at the densest rate, then thin each truck to its own
            // interval. The jitter shrinks with the interval so chronological
            // order still holds at generation time.
            let mut dense = base.clone();
            dense.gps_interval_s = scenario.rate_range_s.0;
            dense.gps_interval_jitter_s = ((scenario.rate_range_s.0 - 1) / 2)
                .min(base.gps_interval_jitter_s)
                .max(0);
            let mut ds = generate_dataset(&dense);
            for sample in samples_mut(&mut ds) {
                let rate = truck_rate_s(scenario, sample.truck_id);
                let pts = std::mem::replace(&mut sample.raw, Trajectory::empty()).into_points();
                sample.raw = Trajectory::new(thin_to_interval(pts, rate));
            }
            ds
        }
        ScenarioKind::MultiLeg => {
            let mut multi = base.clone();
            multi.reload_leg_prob = scenario.reload_leg_prob;
            generate_dataset(&multi)
        }
    }
}

/// The deterministic sampling interval of `truck_id` under a
/// [`ScenarioKind::MixedRates`] scenario (seconds, within
/// [`ScenarioConfig::rate_range_s`]).
pub fn truck_rate_s(scenario: &ScenarioConfig, truck_id: u32) -> i64 {
    let (lo, hi) = scenario.rate_range_s;
    let span = (hi - lo + 1) as u64;
    lo + (mix64(scenario.seed, u64::from(truck_id), 0x5261_7465) % span) as i64
}

fn samples_mut(ds: &mut Dataset) -> impl Iterator<Item = &mut Sample> {
    ds.train
        .iter_mut()
        .chain(ds.val.iter_mut())
        .chain(ds.test.iter_mut())
}

/// Applies the per-sample pathology of `scenario` in place, seeding the
/// injection RNG from `(scenario.seed, truck_id, day)`.
pub fn transform_sample(sample: &mut Sample, scenario: &ScenarioConfig) {
    let mut rng = StdRng::seed_from_u64(mix64(
        scenario.seed,
        u64::from(sample.truck_id),
        u64::from(sample.day),
    ));
    let pts = std::mem::replace(&mut sample.raw, Trajectory::empty()).into_points();
    let pts = match scenario.kind {
        ScenarioKind::TunnelDropout => inject_dropouts(pts, scenario, &mut rng),
        ScenarioKind::ClockSkew => apply_clock_skew(pts, scenario, &mut rng),
        ScenarioKind::SpoofJump => inject_spoof_run(pts, scenario, &mut rng),
        ScenarioKind::Baseline | ScenarioKind::MixedRates | ScenarioKind::MultiLeg => pts,
    };
    sample.raw = Trajectory::new(pts);
}

/// Removes 1–`dropouts_per_day` contiguous time windows of fixes (tunnel /
/// urban-canyon blanks). The first and last fix always survive, so the day's
/// time span is preserved.
pub fn inject_dropouts(
    points: Vec<GpsPoint>,
    scenario: &ScenarioConfig,
    rng: &mut StdRng,
) -> Vec<GpsPoint> {
    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        return points;
    };
    let (t0, t1) = (first.t, last.t);
    if t1 - t0 <= scenario.dropout_gap_s.1 {
        return points;
    }
    let n_gaps = rng.gen_range(scenario.dropouts_per_day.0..=scenario.dropouts_per_day.1);
    let mut windows: Vec<(i64, i64)> = Vec::with_capacity(n_gaps);
    for _ in 0..n_gaps {
        let gap = rng.gen_range(scenario.dropout_gap_s.0..=scenario.dropout_gap_s.1);
        let start = rng.gen_range(t0..=(t1 - gap).max(t0));
        windows.push((start, start + gap));
    }
    let n = points.len();
    points
        .into_iter()
        .enumerate()
        .filter(|(i, p)| {
            *i == 0 || *i == n - 1 || !windows.iter().any(|&(a, b)| p.t > a && p.t < b)
        })
        .map(|(_, p)| p)
        .collect()
}

/// Shifts the device clock by a constant per-day offset (random sign) and
/// pushes a few fixes behind their predecessors; out-of-order fixes are then
/// dropped, as a conforming ingest front-end would (the CSV reader rejects
/// non-increasing timestamps outright).
///
/// Ground-truth labels stay in *true* time — the offset between device
/// timestamps and labels is the pathology.
pub fn apply_clock_skew(
    points: Vec<GpsPoint>,
    scenario: &ScenarioConfig,
    rng: &mut StdRng,
) -> Vec<GpsPoint> {
    let magnitude = rng.gen_range(scenario.skew_offset_s.0..=scenario.skew_offset_s.1);
    let offset = if rng.gen_bool(0.5) {
        magnitude
    } else {
        -magnitude
    };
    let mut out: Vec<GpsPoint> = Vec::with_capacity(points.len());
    for (i, p) in points.into_iter().enumerate() {
        let mut t = p.t + offset;
        if i > 0 && rng.gen_bool(scenario.backward_jitter_prob) {
            t -= rng.gen_range(scenario.backward_jitter_s.0..=scenario.backward_jitter_s.1);
        }
        // Ingest sanitisation: drop fixes that do not advance the clock.
        match out.last() {
            Some(prev) if t <= prev.t => {}
            _ => out.push(GpsPoint::new(p.lat, p.lng, t)),
        }
    }
    out
}

/// With probability `spoof_prob`, displaces one contiguous run of fixes by a
/// common multi-kilometer offset. The run is internally consistent — only
/// its two edges imply impossible speeds — which is what makes spoofing
/// harder than the isolated outliers the 130 km/h filter removes.
pub fn inject_spoof_run(
    mut points: Vec<GpsPoint>,
    scenario: &ScenarioConfig,
    rng: &mut StdRng,
) -> Vec<GpsPoint> {
    if points.len() < scenario.spoof_run.1 + 2 || !rng.gen_bool(scenario.spoof_prob) {
        return points;
    }
    let run = rng.gen_range(scenario.spoof_run.0..=scenario.spoof_run.1);
    let start = rng.gen_range(1..points.len() - run);
    let shift = rng.gen_range(scenario.spoof_shift_m.0..scenario.spoof_shift_m.1);
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let (dx, dy) = (shift * angle.cos(), shift * angle.sin());
    for p in &mut points[start..start + run] {
        // Local equirectangular meters → degrees; exact enough for a
        // synthetic displacement well inside one degree.
        let dlat = dy / 111_320.0;
        let dlng = dx / (111_320.0 * p.lat.to_radians().cos());
        *p = GpsPoint::new(p.lat + dlat, p.lng + dlng, p.t);
    }
    points
}

/// Thins a dense fix sequence to one fix per `interval_s` seconds (keeping
/// the first fix and every fix that advances the clock by at least the
/// interval).
pub fn thin_to_interval(points: Vec<GpsPoint>, interval_s: i64) -> Vec<GpsPoint> {
    let mut out: Vec<GpsPoint> = Vec::new();
    for p in points {
        match out.last() {
            Some(prev) if p.t - prev.t < interval_s => {}
            _ => out.push(p),
        }
    }
    out
}

/// SplitMix64-style avalanche of `(seed, a, b)` into one 64-bit stream seed.
fn mix64(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario(kind: ScenarioKind) -> (SynthConfig, ScenarioConfig) {
        (SynthConfig::tiny(), ScenarioConfig::new(kind, 77))
    }

    fn all_samples(ds: &Dataset) -> impl Iterator<Item = &Sample> {
        ds.train.iter().chain(&ds.val).chain(&ds.test)
    }

    #[test]
    fn every_scenario_is_seed_deterministic() {
        for kind in ScenarioKind::ALL {
            let (base, sc) = tiny_scenario(kind);
            let a = generate_scenario_dataset(&base, &sc);
            let b = generate_scenario_dataset(&base, &sc);
            assert_eq!(a.len(), b.len(), "{}", kind.label());
            for (x, y) in all_samples(&a).zip(all_samples(&b)) {
                assert_eq!(x.raw.points(), y.raw.points(), "{}", kind.label());
                assert_eq!(x.truth, y.truth, "{}", kind.label());
            }
        }
    }

    #[test]
    fn scenario_seed_changes_the_injection_not_the_world() {
        let (base, mut sc) = tiny_scenario(ScenarioKind::TunnelDropout);
        let a = generate_scenario_dataset(&base, &sc);
        sc.seed = 78;
        let b = generate_scenario_dataset(&base, &sc);
        // Same world: truth labels are untouched by the injection stream.
        for (x, y) in all_samples(&a).zip(all_samples(&b)) {
            assert_eq!(x.truth, y.truth);
        }
        // Different injection: at least one trajectory differs.
        let differs = all_samples(&a)
            .zip(all_samples(&b))
            .any(|(x, y)| x.raw.points() != y.raw.points());
        assert!(differs, "changing the scenario seed changed nothing");
    }

    #[test]
    fn tunnel_dropout_opens_multi_minute_gaps() {
        let (base, sc) = tiny_scenario(ScenarioKind::TunnelDropout);
        let clean = generate_dataset(&base);
        let ds = generate_scenario_dataset(&base, &sc);
        let mut gapped = 0;
        for (dirty, orig) in all_samples(&ds).zip(all_samples(&clean)) {
            assert!(dirty.raw.len() <= orig.raw.len());
            assert!(dirty.raw.len() >= 2);
            // Time span preserved: first/last fixes survive.
            assert_eq!(
                dirty.raw.first().map(|p| p.t),
                orig.raw.first().map(|p| p.t)
            );
            assert_eq!(dirty.raw.last().map(|p| p.t), orig.raw.last().map(|p| p.t));
            let max_gap = dirty
                .raw
                .points()
                .windows(2)
                .map(|w| w[1].t - w[0].t)
                .max()
                .unwrap_or(0);
            if max_gap >= sc.dropout_gap_s.0 {
                gapped += 1;
            }
        }
        assert!(
            gapped * 2 > ds.len(),
            "only {gapped}/{} days gapped",
            ds.len()
        );
    }

    #[test]
    fn clock_skew_offsets_device_time_and_stays_chronological() {
        let (base, sc) = tiny_scenario(ScenarioKind::ClockSkew);
        let clean = generate_dataset(&base);
        let ds = generate_scenario_dataset(&base, &sc);
        for (dirty, orig) in all_samples(&ds).zip(all_samples(&clean)) {
            assert!(dirty.raw.points().windows(2).all(|w| w[0].t < w[1].t));
            let (Some(d0), Some(o0)) = (dirty.raw.first(), orig.raw.first()) else {
                panic!("empty trajectory");
            };
            let offset = (d0.t - o0.t).abs();
            assert!(
                (sc.skew_offset_s.0..=sc.skew_offset_s.1).contains(&offset),
                "offset {offset}s outside configured range"
            );
            // Truth is untouched: it stays in true time.
            assert_eq!(dirty.truth, orig.truth);
        }
    }

    #[test]
    fn spoof_runs_are_displaced_kilometers_and_internally_consistent() {
        let (base, sc) = tiny_scenario(ScenarioKind::SpoofJump);
        let clean = generate_dataset(&base);
        let ds = generate_scenario_dataset(&base, &sc);
        let mut spoofed_days = 0;
        for (dirty, orig) in all_samples(&ds).zip(all_samples(&clean)) {
            assert_eq!(dirty.raw.len(), orig.raw.len());
            let displaced: Vec<usize> = dirty
                .raw
                .points()
                .iter()
                .zip(orig.raw.points())
                .enumerate()
                .filter(|(_, (d, o))| d.distance_m(o) > sc.spoof_shift_m.0 * 0.9)
                .map(|(i, _)| i)
                .collect();
            if displaced.is_empty() {
                continue;
            }
            spoofed_days += 1;
            // One contiguous run within the configured length bounds.
            let contiguous = displaced.windows(2).all(|w| w[1] == w[0] + 1);
            assert!(contiguous, "spoofed fixes are not one contiguous run");
            assert!((sc.spoof_run.0..=sc.spoof_run.1).contains(&displaced.len()));
        }
        let total = ds.len();
        assert!(
            spoofed_days * 2 >= total,
            "only {spoofed_days}/{total} days spoofed at prob {}",
            sc.spoof_prob
        );
    }

    #[test]
    fn mixed_rates_thin_each_truck_to_its_own_interval() {
        let (base, sc) = tiny_scenario(ScenarioKind::MixedRates);
        let ds = generate_scenario_dataset(&base, &sc);
        let mut rates = std::collections::BTreeSet::new();
        for s in all_samples(&ds) {
            let rate = truck_rate_s(&sc, s.truck_id);
            assert!((sc.rate_range_s.0..=sc.rate_range_s.1).contains(&rate));
            rates.insert(rate);
            // Fixes are no denser than the truck's interval.
            assert!(s.raw.points().windows(2).all(|w| w[1].t - w[0].t >= rate));
        }
        assert!(rates.len() > 1, "all trucks drew the same rate");
    }

    #[test]
    fn multi_leg_days_plan_extra_stays() {
        let (base, mut sc) = tiny_scenario(ScenarioKind::MultiLeg);
        sc.reload_leg_prob = 1.0;
        let clean = generate_dataset(&base);
        let ds = generate_scenario_dataset(&base, &sc);
        // The reload leg consumes extra RNG draws, so samples cannot be
        // compared pairwise against the clean dataset — assert per-sample
        // invariants and the distribution shift instead.
        for multi in all_samples(&ds) {
            // Base plan (≥3 stays) plus the reload pair.
            assert!(multi.planned_stays >= 5, "{}", multi.planned_stays);
            // The labelled (first) process still lies inside the day and
            // ends well before it (the reload leg follows).
            let (Some(first), Some(last)) = (multi.raw.first(), multi.raw.last()) else {
                panic!("empty trajectory");
            };
            assert!(multi.truth.load_start_s >= first.t);
            assert!(multi.truth.unload_end_s < last.t);
        }
        let mean = |ds: &Dataset| {
            all_samples(ds).map(|s| s.planned_stays).sum::<usize>() as f64 / ds.len() as f64
        };
        assert!(
            mean(&ds) > mean(&clean) + 1.0,
            "reload legs did not shift the stay-count distribution: {} vs {}",
            mean(&ds),
            mean(&clean)
        );
    }

    #[test]
    fn thin_to_interval_respects_the_floor() {
        let pts: Vec<GpsPoint> = (0..100)
            .map(|i| GpsPoint::new(32.0, 120.9, i * 5))
            .collect();
        let thinned = thin_to_interval(pts, 30);
        assert!(thinned.windows(2).all(|w| w[1].t - w[0].t >= 30));
        assert_eq!(thinned.first().map(|p| p.t), Some(0));
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            [
                "baseline",
                "tunnel-dropout",
                "clock-skew",
                "spoof-jump",
                "mixed-rates",
                "multi-leg"
            ]
        );
        for (i, k) in ScenarioKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
