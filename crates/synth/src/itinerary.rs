//! Day planning: the three ordered phases of an HCT process plus the
//! confounding breaks that make detection hard.
//!
//! Each plan has one loading stop and one later unloading stop (Figure 1 of
//! the paper) and a controlled number of ordinary breaks before, between, and
//! after them, so the total stay-point count lands in the paper's 3–14 range
//! with the Table III bucket mix. With probability
//! [`SynthConfig::reload_leg_prob`] (0 by default) the day carries a *second*
//! load → unload process after the first — the multi-leg confounder of the
//! scenario suite; the ground truth always labels the first process.

use crate::city::{City, Site};
use crate::config::SynthConfig;
use crate::rand_util::{uniform_i64, weighted_index};
use rand::Rng;

/// A truck's fixed habits: home depot and the l/u sites it serves.
#[derive(Debug, Clone)]
pub struct TruckProfile {
    /// Stable identifier.
    pub id: u32,
    /// Fuel tankers load at fueling stations — the site type everyone also
    /// rests at.
    pub is_fuel_truck: bool,
    /// Home depot where every day starts and ends.
    pub depot: Site,
    /// Loading sites this truck serves.
    pub loading_pool: Vec<Site>,
    /// Unloading sites this truck serves.
    pub unloading_pool: Vec<Site>,
}

impl TruckProfile {
    /// Samples a truck's habits from the city.
    pub fn generate<R: Rng>(city: &City, config: &SynthConfig, rng: &mut R, id: u32) -> Self {
        let is_fuel_truck = rng.gen_bool(config.fuel_truck_fraction);
        let depot = city.depots[rng.gen_range(0..city.depots.len())];
        let load_src: &[Site] = if is_fuel_truck {
            &city.fueling_sites
        } else {
            &city.loading_sites
        };
        let n_load = rng
            .gen_range(config.loading_pool_per_truck.0..=config.loading_pool_per_truck.1)
            .min(load_src.len());
        let n_unload = rng
            .gen_range(config.unloading_pool_per_truck.0..=config.unloading_pool_per_truck.1)
            .min(city.unloading_sites.len());
        // Fuel tankers unload at fueling stations too (delivering fuel).
        let unload_src: &[Site] = if is_fuel_truck {
            &city.fueling_sites
        } else {
            &city.unloading_sites
        };
        TruckProfile {
            id,
            is_fuel_truck,
            depot,
            loading_pool: sample_distinct(rng, load_src, n_load),
            unloading_pool: sample_distinct(rng, unload_src, n_unload),
        }
    }
}

fn sample_distinct<R: Rng>(rng: &mut R, src: &[Site], n: usize) -> Vec<Site> {
    assert!(
        n >= 1 && n <= src.len(),
        "cannot sample {n} from {}",
        src.len()
    );
    let mut idx: Vec<usize> = (0..src.len()).collect();
    // Partial Fisher–Yates.
    for i in 0..n {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..n].iter().map(|&i| src[i]).collect()
}

/// Why the truck stays at a stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StayKind {
    /// Loading hazardous chemicals (origin of the loaded trajectory).
    Loading,
    /// Unloading hazardous chemicals (destination of the loaded trajectory).
    Unloading,
    /// An ordinary break: meal, rest, refuelling the truck itself.
    Break,
}

/// One planned stop of a day.
#[derive(Debug, Clone, Copy)]
pub struct PlannedStop {
    /// Where.
    pub site: Site,
    /// How long, seconds.
    pub dwell_s: i64,
    /// Why.
    pub kind: StayKind,
}

/// A full day plan: departure time, ordered stops, return anchor.
#[derive(Debug, Clone)]
pub struct DayPlan {
    /// Seconds after midnight at departure from the depot.
    pub depart_s: i64,
    /// The ordered stops: one `Loading` then one later `Unloading`, plus an
    /// optional second load/unload pair (the reload leg) after the first.
    pub stops: Vec<PlannedStop>,
    /// Where the day ends (the depot).
    pub end_site: Site,
}

impl DayPlan {
    /// Number of planned stay points (every stop dwells above the threshold).
    pub fn num_stays(&self) -> usize {
        self.stops.len()
    }

    /// Index of the *first* loading stop within `stops`.
    pub fn loading_index(&self) -> usize {
        self.stops
            .iter()
            .position(|s| s.kind == StayKind::Loading)
            // lint: allow(panic, panic-path): construction invariant — every generated plan contains at least one loading stop
            .expect("plan has a loading stop")
    }

    /// Index of the *first* unloading stop within `stops`.
    pub fn unloading_index(&self) -> usize {
        self.stops
            .iter()
            .position(|s| s.kind == StayKind::Unloading)
            // lint: allow(panic, panic-path): construction invariant — every generated plan contains at least one unloading stop
            .expect("plan has an unloading stop")
    }

    /// Whether the truck is loaded while driving *to* stop `i` (or to the end
    /// site when `i == stops.len()`): loading sets the state, unloading
    /// clears it, so a reload leg is loaded again.
    pub fn loaded_on_leg(&self, i: usize) -> bool {
        let upto = i.min(self.stops.len());
        let mut loaded = false;
        for s in &self.stops[..upto] {
            match s.kind {
                StayKind::Loading => loaded = true,
                StayKind::Unloading => loaded = false,
                StayKind::Break => {}
            }
        }
        loaded
    }
}

/// Plans one day for `truck`, targeting the paper's stay-point bucket mix.
pub fn plan_day<R: Rng>(
    city: &City,
    config: &SynthConfig,
    truck: &TruckProfile,
    rng: &mut R,
) -> DayPlan {
    // Stay-point count: sample the bucket, then a count within it.
    let bucket = weighted_index(rng, &config.bucket_weights);
    let (lo, hi) = (3 + 3 * bucket, 5 + 3 * bucket);
    let n_stays = rng.gen_range(lo..=hi);
    let n_breaks = n_stays - 2;

    // Distribute breaks across the three phases.
    let mut pre = 0;
    let mut mid = 0;
    let mut post = 0;
    for _ in 0..n_breaks {
        match weighted_index(rng, &[0.40, 0.25, 0.35]) {
            0 => pre += 1,
            1 => mid += 1,
            _ => post += 1,
        }
    }

    let loading = truck.loading_pool[rng.gen_range(0..truck.loading_pool.len())];
    let unloading = pick_distinct_site(rng, &truck.unloading_pool, loading);

    let mut stops = Vec::with_capacity(n_stays);
    let mut cursor = (truck.depot.x, truck.depot.y);

    for _ in 0..pre {
        let site = pick_break_site(city, config, rng, cursor, (loading.x, loading.y));
        stops.push(PlannedStop {
            site,
            dwell_s: uniform_i64(rng, config.break_dwell_s),
            kind: StayKind::Break,
        });
        cursor = (site.x, site.y);
    }
    stops.push(PlannedStop {
        site: loading,
        dwell_s: uniform_i64(rng, config.loading_dwell_s),
        kind: StayKind::Loading,
    });
    cursor = (loading.x, loading.y);
    for _ in 0..mid {
        let site = pick_break_site(city, config, rng, cursor, (unloading.x, unloading.y));
        stops.push(PlannedStop {
            site,
            dwell_s: uniform_i64(rng, config.break_dwell_s),
            kind: StayKind::Break,
        });
        cursor = (site.x, site.y);
    }
    stops.push(PlannedStop {
        site: unloading,
        dwell_s: uniform_i64(rng, config.unloading_dwell_s),
        kind: StayKind::Unloading,
    });
    cursor = (unloading.x, unloading.y);
    for _ in 0..post {
        let site = pick_break_site(city, config, rng, cursor, (truck.depot.x, truck.depot.y));
        stops.push(PlannedStop {
            site,
            dwell_s: uniform_i64(rng, config.break_dwell_s),
            kind: StayKind::Break,
        });
        cursor = (site.x, site.y);
    }

    // Optional reload leg: a second load → unload process after the first.
    // The motion simulator drives these legs loaded and the detectors see two
    // plausible loaded trajectories — but the ground truth labels the first.
    if config.reload_leg_prob > 0.0 && rng.gen_bool(config.reload_leg_prob) {
        let reload = truck.loading_pool[rng.gen_range(0..truck.loading_pool.len())];
        stops.push(PlannedStop {
            site: reload,
            dwell_s: uniform_i64(rng, config.loading_dwell_s),
            kind: StayKind::Loading,
        });
        let deliver = pick_distinct_site(rng, &truck.unloading_pool, reload);
        stops.push(PlannedStop {
            site: deliver,
            dwell_s: uniform_i64(rng, config.unloading_dwell_s),
            kind: StayKind::Unloading,
        });
        cursor = (deliver.x, deliver.y);
    }
    let _ = cursor;

    DayPlan {
        depart_s: uniform_i64(rng, config.day_start_s),
        stops,
        end_site: truck.depot,
    }
}

/// Picks an unloading site different from the loading site when possible.
fn pick_distinct_site<R: Rng>(rng: &mut R, pool: &[Site], avoid: Site) -> Site {
    for _ in 0..8 {
        let s = pool[rng.gen_range(0..pool.len())];
        if (s.x - avoid.x).abs() > 1.0 || (s.y - avoid.y).abs() > 1.0 {
            return s;
        }
    }
    pool[rng.gen_range(0..pool.len())]
}

/// Picks a break site with low detour relative to the `from → to` leg.
///
/// With probability `fueling_break_prob` the break happens at a fueling
/// station — indistinguishable by staying behaviour from a fuel tanker's
/// loading stop (the paper's complex staying scenario).
fn pick_break_site<R: Rng>(
    city: &City,
    config: &SynthConfig,
    rng: &mut R,
    from: (f64, f64),
    to: (f64, f64),
) -> Site {
    let pool: &[Site] = if rng.gen_bool(config.fueling_break_prob) {
        &city.fueling_sites
    } else {
        &city.break_sites
    };
    assert!(!pool.is_empty(), "city has no break/fueling sites");
    let mut best: Option<(Site, f64)> = None;
    for _ in 0..6 {
        let s = pool[rng.gen_range(0..pool.len())];
        let detour = dist(from, (s.x, s.y)) + dist((s.x, s.y), to) - dist(from, to);
        match best {
            Some((_, d)) if d <= detour => {}
            _ => best = Some((s, detour)),
        }
    }
    // lint: allow(panic, panic-path): best is set on the first of the six draws; pool non-emptiness asserted above
    best.expect("pool is non-empty").0
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (City, SynthConfig, StdRng) {
        let cfg = SynthConfig::tiny();
        (City::generate(&cfg), cfg, StdRng::seed_from_u64(99))
    }

    #[test]
    fn truck_profile_respects_pools() {
        let (city, cfg, mut rng) = setup();
        for id in 0..40 {
            let t = TruckProfile::generate(&city, &cfg, &mut rng, id);
            assert!(!t.loading_pool.is_empty());
            assert!(!t.unloading_pool.is_empty());
            assert!(t.loading_pool.len() <= cfg.loading_pool_per_truck.1);
            if t.is_fuel_truck {
                for s in &t.loading_pool {
                    assert_eq!(s.category, crate::poi::PoiCategory::FuelingStation);
                }
            }
        }
    }

    #[test]
    fn plan_has_one_loading_then_one_unloading() {
        let (city, cfg, mut rng) = setup();
        let t = TruckProfile::generate(&city, &cfg, &mut rng, 0);
        for _ in 0..50 {
            let plan = plan_day(&city, &cfg, &t, &mut rng);
            let loads = plan
                .stops
                .iter()
                .filter(|s| s.kind == StayKind::Loading)
                .count();
            let unloads = plan
                .stops
                .iter()
                .filter(|s| s.kind == StayKind::Unloading)
                .count();
            assert_eq!((loads, unloads), (1, 1));
            assert!(plan.loading_index() < plan.unloading_index());
        }
    }

    #[test]
    fn stay_counts_land_in_paper_range() {
        let (city, cfg, mut rng) = setup();
        let t = TruckProfile::generate(&city, &cfg, &mut rng, 0);
        for _ in 0..200 {
            let plan = plan_day(&city, &cfg, &t, &mut rng);
            assert!((3..=14).contains(&plan.num_stays()), "{}", plan.num_stays());
        }
    }

    #[test]
    fn bucket_mix_roughly_matches_weights() {
        let (city, cfg, mut rng) = setup();
        let t = TruckProfile::generate(&city, &cfg, &mut rng, 0);
        let mut buckets = [0usize; 4];
        let n = 2_000;
        for _ in 0..n {
            let plan = plan_day(&city, &cfg, &t, &mut rng);
            buckets[(plan.num_stays() - 3) / 3] += 1;
        }
        for (i, &w) in cfg.bucket_weights.iter().enumerate() {
            let frac = buckets[i] as f64 / n as f64;
            assert!((frac - w).abs() < 0.05, "bucket {i}: {frac} vs {w}");
        }
    }

    #[test]
    fn loaded_on_leg_brackets_the_loaded_phase() {
        let (city, cfg, mut rng) = setup();
        let t = TruckProfile::generate(&city, &cfg, &mut rng, 0);
        let plan = plan_day(&city, &cfg, &t, &mut rng);
        let l = plan.loading_index();
        let u = plan.unloading_index();
        assert!(!plan.loaded_on_leg(l)); // driving TO the loading stop: empty
        assert!(plan.loaded_on_leg(u)); // driving TO the unloading stop: loaded
        assert!(!plan.loaded_on_leg(plan.stops.len())); // heading home: empty
    }

    #[test]
    fn reload_leg_appends_a_second_loaded_process() {
        let (city, mut cfg, mut rng) = setup();
        cfg.reload_leg_prob = 1.0;
        let t = TruckProfile::generate(&city, &cfg, &mut rng, 0);
        for _ in 0..30 {
            let plan = plan_day(&city, &cfg, &t, &mut rng);
            let loads = plan
                .stops
                .iter()
                .filter(|s| s.kind == StayKind::Loading)
                .count();
            let unloads = plan
                .stops
                .iter()
                .filter(|s| s.kind == StayKind::Unloading)
                .count();
            assert_eq!((loads, unloads), (2, 2));
            // The last two stops are the reload leg, in load → unload order.
            let n = plan.stops.len();
            assert_eq!(plan.stops[n - 2].kind, StayKind::Loading);
            assert_eq!(plan.stops[n - 1].kind, StayKind::Unloading);
            // The reload's delivery leg drives loaded; heading home does not.
            assert!(plan.loaded_on_leg(n - 1));
            assert!(!plan.loaded_on_leg(n));
            // First-process indexes are unaffected by the reload pair.
            assert!(plan.loading_index() < plan.unloading_index());
            assert!(plan.unloading_index() < n - 2);
        }
    }

    #[test]
    fn all_stop_dwells_exceed_stay_threshold() {
        let (city, cfg, mut rng) = setup();
        let t = TruckProfile::generate(&city, &cfg, &mut rng, 1);
        for _ in 0..50 {
            let plan = plan_day(&city, &cfg, &t, &mut rng);
            for s in &plan.stops {
                assert!(s.dwell_s >= 900, "dwell {}", s.dwell_s);
            }
        }
    }
}
