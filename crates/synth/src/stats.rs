//! Dataset summary statistics — the transparency counterpart of the paper's
//! (undisclosed, NDA-bound) dataset table. Computed from generated samples so
//! EXPERIMENTS.md and the CLI can report exactly what a run trained on.

use crate::dataset::{Dataset, Sample};
use lead_core::config::LeadConfig;
use lead_core::label::truth_stay_indices;
use lead_core::processing::ProcessedTrajectory;
use std::collections::HashSet;
use std::fmt;

/// Summary statistics of one dataset split (or a union of splits).
#[derive(Debug, Clone, Default)]
pub struct SplitStats {
    /// Number of one-day samples.
    pub samples: usize,
    /// Distinct trucks.
    pub trucks: usize,
    /// Mean GPS points per raw trajectory.
    pub mean_points: f64,
    /// Mean extracted stay points per trajectory.
    pub mean_stays: f64,
    /// Stay-point bucket counts (3–5 / 6–8 / 9–11 / 12–14, clamped).
    pub bucket_counts: [usize; 4],
    /// Samples whose ground truth survives processing (scorable).
    pub scorable: usize,
}

impl SplitStats {
    /// Computes statistics over `samples` with `config`'s processing
    /// thresholds.
    pub fn compute(samples: &[Sample], config: &LeadConfig) -> Self {
        let mut out = SplitStats {
            samples: samples.len(),
            ..Default::default()
        };
        if samples.is_empty() {
            return out;
        }
        let mut trucks = HashSet::new();
        let mut total_points = 0usize;
        let mut total_stays = 0usize;
        for s in samples {
            trucks.insert(s.truck_id);
            total_points += s.raw.len();
            let proc = ProcessedTrajectory::from_raw(&s.raw, config);
            let n = proc.num_stay_points();
            total_stays += n;
            let b = match n {
                0..=5 => 0,
                6..=8 => 1,
                9..=11 => 2,
                _ => 3,
            };
            out.bucket_counts[b] += 1;
            if truth_stay_indices(&proc, &s.truth).is_some() {
                out.scorable += 1;
            }
        }
        out.trucks = trucks.len();
        out.mean_points = total_points as f64 / samples.len() as f64;
        out.mean_stays = total_stays as f64 / samples.len() as f64;
        out
    }
}

impl fmt::Display for SplitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [b0, b1, b2, b3] = self.bucket_counts;
        let pct = |c: usize| {
            if self.samples == 0 {
                0.0
            } else {
                c as f64 / self.samples as f64 * 100.0
            }
        };
        write!(
            f,
            "{} samples / {} trucks; {:.0} points & {:.1} stays per day; \
             buckets 3~5:{:.0}% 6~8:{:.0}% 9~11:{:.0}% 12~14:{:.0}%; {:.0}% scorable",
            self.samples,
            self.trucks,
            self.mean_points,
            self.mean_stays,
            pct(b0),
            pct(b1),
            pct(b2),
            pct(b3),
            pct(self.scorable),
        )
    }
}

/// Statistics for every split of a dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Training split.
    pub train: SplitStats,
    /// Validation split.
    pub val: SplitStats,
    /// Test split.
    pub test: SplitStats,
}

impl DatasetStats {
    /// Computes statistics for all three splits.
    pub fn compute(dataset: &Dataset, config: &LeadConfig) -> Self {
        Self {
            train: SplitStats::compute(&dataset.train, config),
            val: SplitStats::compute(&dataset.val, config),
            test: SplitStats::compute(&dataset.test, config),
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "train: {}", self.train)?;
        writeln!(f, "val:   {}", self.val)?;
        write!(f, "test:  {}", self.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_dataset, SynthConfig};

    #[test]
    fn stats_are_consistent_with_the_dataset() {
        let mut cfg = SynthConfig::tiny();
        cfg.num_trucks = 10;
        let ds = generate_dataset(&cfg);
        let stats = DatasetStats::compute(&ds, &LeadConfig::paper());
        assert_eq!(stats.train.samples, ds.train.len());
        assert_eq!(stats.test.samples, ds.test.len());
        assert!(stats.train.trucks >= 1);
        assert!(stats.train.mean_points > 30.0);
        assert!(stats.train.mean_stays >= 3.0 && stats.train.mean_stays <= 14.0);
        assert_eq!(
            stats.train.bucket_counts.iter().sum::<usize>(),
            ds.train.len()
        );
        assert!(stats.train.scorable * 10 >= ds.train.len() * 8);
        // Display renders without panicking and mentions every split.
        let text = stats.to_string();
        assert!(text.contains("train:") && text.contains("test:"));
    }

    #[test]
    fn empty_split_is_benign() {
        let s = SplitStats::compute(&[], &LeadConfig::paper());
        assert_eq!(s.samples, 0);
        assert!(s.to_string().contains("0 samples"));
    }
}
