//! Kinematic simulation: a [`DayPlan`] becomes a noiseless GPS track plus
//! ground-truth loading/unloading intervals.
//!
//! The simulator builds a piecewise-linear *keyframe* timeline — waypoints
//! with arrival times — then samples it at the GPS cadence. Three behaviours
//! give the loaded phase its moving-behaviour signature (the signal LEAD
//! exploits and stay-point-only baselines cannot see):
//!
//! - loaded legs run at `loaded_speed_factor` of the empty cruise speed;
//! - loaded legs detour around the urban core (the regulatory prohibition);
//! - all legs get mild curvature and optional sub-threshold micro-stops.

use crate::city::City;
use crate::config::SynthConfig;
use crate::itinerary::{DayPlan, StayKind};
use crate::rand_util::{randn, uniform_f64, uniform_i64};
use rand::Rng;

/// Ground-truth intervals of the loading and unloading stays (re-exported
/// from `lead-core`, which owns the label model). The loaded trajectory spans
/// `load_start_s ..= unload_end_s`.
pub use lead_core::label::TruthLabel;

/// One point of the noiseless track, in local meters.
#[derive(Debug, Clone, Copy)]
pub struct TrackPoint {
    /// East offset, meters.
    pub x: f64,
    /// North offset, meters.
    pub y: f64,
    /// Seconds after midnight.
    pub t: i64,
    /// Whether the point falls within a planned stay (wander jitter applies).
    pub staying: bool,
}

/// The simulated day.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Noiseless track at the GPS cadence.
    pub track: Vec<TrackPoint>,
    /// Ground-truth l/u intervals.
    pub truth: TruthLabel,
}

#[derive(Debug, Clone, Copy)]
struct Keyframe {
    x: f64,
    y: f64,
    t: f64,
    staying: bool,
}

/// Simulates `plan` in `city`.
pub fn simulate<R: Rng>(
    city: &City,
    config: &SynthConfig,
    plan: &DayPlan,
    rng: &mut R,
) -> SimResult {
    let mut frames: Vec<Keyframe> = Vec::new();
    let mut pos = (plan.end_site.x, plan.end_site.y); // day starts at the depot
    let mut t = plan.depart_s as f64;
    frames.push(Keyframe {
        x: pos.0,
        y: pos.1,
        t,
        staying: false,
    });

    let mut truth = TruthLabel {
        load_start_s: 0,
        load_end_s: 0,
        unload_start_s: 0,
        unload_end_s: 0,
    };

    for (i, stop) in plan.stops.iter().enumerate() {
        let loaded = plan.loaded_on_leg(i);
        drive(
            city,
            config,
            rng,
            &mut frames,
            &mut pos,
            &mut t,
            (stop.site.x, stop.site.y),
            loaded,
        );
        // The stay: two keyframes at the site bracket the dwell.
        let start = t;
        frames.push(Keyframe {
            x: pos.0,
            y: pos.1,
            t,
            staying: true,
        });
        t += stop.dwell_s as f64;
        frames.push(Keyframe {
            x: pos.0,
            y: pos.1,
            t,
            staying: true,
        });
        // Only the *first* process is the ground truth; a reload leg's second
        // load/unload pair (scenario confounder) must not overwrite it.
        match stop.kind {
            StayKind::Loading if truth.load_end_s == 0 => {
                truth.load_start_s = start as i64;
                truth.load_end_s = t as i64;
            }
            StayKind::Unloading if truth.unload_end_s == 0 => {
                truth.unload_start_s = start as i64;
                truth.unload_end_s = t as i64;
            }
            StayKind::Loading | StayKind::Unloading | StayKind::Break => {}
        }
    }

    // Head home (empty) and stop recording shortly after arrival, so no
    // trailing stay point forms at the depot.
    drive(
        city,
        config,
        rng,
        &mut frames,
        &mut pos,
        &mut t,
        (plan.end_site.x, plan.end_site.y),
        false,
    );
    frames.push(Keyframe {
        x: pos.0,
        y: pos.1,
        t: t + 60.0,
        staying: false,
    });

    SimResult {
        track: sample_track(config, rng, &frames),
        truth,
    }
}

/// Appends the keyframes of one driving leg and advances `pos`/`t`.
#[allow(clippy::too_many_arguments)] // internal helper mirroring the sim state
fn drive<R: Rng>(
    city: &City,
    config: &SynthConfig,
    rng: &mut R,
    frames: &mut Vec<Keyframe>,
    pos: &mut (f64, f64),
    t: &mut f64,
    to: (f64, f64),
    loaded: bool,
) {
    let waypoints = route(city, config, rng, *pos, to, loaded);
    let speed_scale = if loaded {
        config.loaded_speed_factor
    } else {
        1.0
    };
    // One micro-stop per leg at most, placed on a random waypoint boundary.
    let micro_at = if rng.gen_bool(config.micro_stop_prob) && waypoints.len() > 1 {
        Some(rng.gen_range(0..waypoints.len() - 1))
    } else {
        None
    };
    for (w, &wp) in waypoints.iter().enumerate() {
        let speed = uniform_f64(rng, config.base_speed_mps) * speed_scale;
        let d = dist(*pos, wp);
        *t += d / speed.max(1.0);
        *pos = wp;
        frames.push(Keyframe {
            x: pos.0,
            y: pos.1,
            t: *t,
            staying: false,
        });
        if micro_at == Some(w) {
            let dwell = uniform_i64(rng, config.micro_stop_dwell_s) as f64;
            *t += dwell;
            frames.push(Keyframe {
                x: pos.0,
                y: pos.1,
                t: *t,
                staying: false,
            });
        }
    }
}

/// Waypoints from `from` to `to` (inclusive of `to`, exclusive of `from`):
/// mild curvature plus an urban-core detour for loaded trucks.
fn route<R: Rng>(
    city: &City,
    config: &SynthConfig,
    rng: &mut R,
    from: (f64, f64),
    to: (f64, f64),
    loaded: bool,
) -> Vec<(f64, f64)> {
    let mut pts = vec![from];

    if loaded && config.detour_when_loaded {
        if let Some(w) = core_detour_waypoint(city, from, to) {
            pts.push(w);
        }
    }
    pts.push(to);

    // Insert curvature between consecutive waypoints: 1–2 jittered midpoints.
    let mut out: Vec<(f64, f64)> = Vec::new();
    for seg in pts.windows(2) {
        let &[a, b] = seg else { continue };
        let len = dist(a, b);
        if len > 3_000.0 {
            let n = if len > 12_000.0 { 2 } else { 1 };
            for k in 1..=n {
                let f = k as f64 / (n + 1) as f64;
                let (mx, my) = (a.0 + (b.0 - a.0) * f, a.1 + (b.1 - a.1) * f);
                // Perpendicular wobble proportional to leg length, capped.
                let amp = (len * 0.04).min(700.0);
                let (px, py) = perp_unit(a, b);
                let off = randn(rng) * amp;
                out.push((mx + px * off, my + py * off));
            }
        }
        out.push(b);
    }
    out
}

/// A waypoint that routes the segment around the urban core, or `None` when
/// the straight segment keeps clear of it.
fn core_detour_waypoint(city: &City, a: (f64, f64), b: (f64, f64)) -> Option<(f64, f64)> {
    let margin = city.core_radius_m * 1.1;
    let (cx, cy) = closest_point_on_segment(a, b, (0.0, 0.0));
    let d = (cx * cx + cy * cy).sqrt();
    if d >= margin {
        return None;
    }
    // Push the closest-approach point radially outward past the core.
    let target = city.core_radius_m * 1.35;
    if d < 1.0 {
        // Segment passes through the center: detour perpendicular to it.
        let (px, py) = perp_unit(a, b);
        return Some((px * target, py * target));
    }
    Some((cx / d * target, cy / d * target))
}

fn closest_point_on_segment(a: (f64, f64), b: (f64, f64), p: (f64, f64)) -> (f64, f64) {
    let (abx, aby) = (b.0 - a.0, b.1 - a.1);
    let len2 = abx * abx + aby * aby;
    if len2 == 0.0 {
        return a;
    }
    let tt = (((p.0 - a.0) * abx + (p.1 - a.1) * aby) / len2).clamp(0.0, 1.0);
    (a.0 + abx * tt, a.1 + aby * tt)
}

fn perp_unit(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    let (dx, dy) = (b.0 - a.0, b.1 - a.1);
    let len = (dx * dx + dy * dy).sqrt().max(1e-9);
    (-dy / len, dx / len)
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Samples the keyframe timeline at the GPS cadence with timestamp jitter and
/// stay-wander jitter.
fn sample_track<R: Rng>(config: &SynthConfig, rng: &mut R, frames: &[Keyframe]) -> Vec<TrackPoint> {
    assert!(frames.len() >= 2, "timeline needs at least two keyframes");
    let t0 = frames.first().map_or(0.0, |f| f.t);
    let t1 = frames.last().map_or(0.0, |f| f.t);
    let mut out = Vec::new();
    let mut t = t0;
    let mut last_t_emitted = i64::MIN;
    while t <= t1 {
        let (x, y, staying) = interpolate(frames, t);
        let (x, y) = if staying {
            // Wander within the site while staying (well inside D_max).
            (x + randn(rng) * 15.0, y + randn(rng) * 15.0)
        } else {
            // Roads are not straight lines: mild isotropic wobble.
            (
                x + randn(rng) * config.path_wobble_m,
                y + randn(rng) * config.path_wobble_m,
            )
        };
        let ti = t as i64;
        if ti > last_t_emitted {
            out.push(TrackPoint {
                x,
                y,
                t: ti,
                staying,
            });
            last_t_emitted = ti;
        }
        let jitter = uniform_i64(
            rng,
            (-config.gps_interval_jitter_s, config.gps_interval_jitter_s),
        );
        t += (config.gps_interval_s + jitter).max(1) as f64;
    }
    out
}

/// Linear interpolation over the keyframes at time `t`.
fn interpolate(frames: &[Keyframe], t: f64) -> (f64, f64, bool) {
    debug_assert!(
        matches!((frames.first(), frames.last()), (Some(a), Some(b)) if a.t <= t && t <= b.t)
    );
    // Binary search for the bracketing pair.
    let mut lo = 0;
    let mut hi = frames.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if frames[mid].t <= t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (a, b) = (frames[lo], frames[hi]);
    let span = (b.t - a.t).max(1e-9);
    let f = ((t - a.t) / span).clamp(0.0, 1.0);
    (lerp(a.x, b.x, f), lerp(a.y, b.y, f), a.staying && b.staying)
}

#[inline]
fn lerp(from: f64, to: f64, f: f64) -> f64 {
    from + (to - from) * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itinerary::{plan_day, TruckProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (City, SynthConfig, StdRng) {
        let cfg = SynthConfig::tiny();
        (City::generate(&cfg), cfg, StdRng::seed_from_u64(7))
    }

    fn simulate_one(seed: u64) -> (SimResult, DayPlan, SynthConfig, City) {
        let cfg = SynthConfig::tiny();
        let city = City::generate(&cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let truck = TruckProfile::generate(&city, &cfg, &mut rng, 0);
        let plan = plan_day(&city, &cfg, &truck, &mut rng);
        let sim = simulate(&city, &cfg, &plan, &mut rng);
        (sim, plan, cfg, city)
    }

    #[test]
    fn track_is_chronological() {
        let (sim, ..) = simulate_one(1);
        assert!(sim.track.windows(2).all(|w| w[0].t < w[1].t));
        assert!(sim.track.len() > 50, "got {}", sim.track.len());
    }

    #[test]
    fn truth_intervals_are_ordered() {
        for seed in 0..20 {
            let (sim, ..) = simulate_one(seed);
            let tr = sim.truth;
            assert!(tr.load_start_s < tr.load_end_s);
            assert!(tr.load_end_s < tr.unload_start_s);
            assert!(tr.unload_start_s < tr.unload_end_s);
        }
    }

    #[test]
    fn truck_dwells_at_loading_site_through_truth_interval() {
        let (sim, plan, ..) = simulate_one(3);
        let site = plan.stops[plan.loading_index()].site;
        for p in &sim.track {
            if p.t > sim.truth.load_start_s + 60 && p.t < sim.truth.load_end_s - 60 {
                let d = dist((p.x, p.y), (site.x, site.y));
                assert!(d < 200.0, "wandered {d} m from the loading site");
            }
        }
    }

    #[test]
    fn consecutive_speeds_stay_under_filter_threshold() {
        for seed in 0..10 {
            let (sim, ..) = simulate_one(seed);
            for w in sim.track.windows(2) {
                let d = dist((w[0].x, w[0].y), (w[1].x, w[1].y));
                let dt = (w[1].t - w[0].t) as f64;
                let v_kmh = d / dt * 3.6;
                assert!(v_kmh < 130.0, "speed {v_kmh} km/h at t={}", w[0].t);
            }
        }
    }

    #[test]
    fn loaded_legs_avoid_urban_core() {
        // Find a seed where loading and unloading straddle the core, then
        // check loaded samples stay out of it.
        let mut checked = 0;
        for seed in 0..40 {
            let (sim, plan, _, city) = simulate_one(seed);
            let l = &plan.stops[plan.loading_index()].site;
            let u = &plan.stops[plan.unloading_index()].site;
            let (cx, cy) = closest_point_on_segment((l.x, l.y), (u.x, u.y), (0.0, 0.0));
            if (cx * cx + cy * cy).sqrt() < city.core_radius_m {
                checked += 1;
                for p in &sim.track {
                    if p.t >= sim.truth.load_end_s && p.t <= sim.truth.unload_start_s {
                        let r = (p.x * p.x + p.y * p.y).sqrt();
                        assert!(
                            r > city.core_radius_m * 0.95,
                            "loaded truck inside core at r={r} (seed {seed})"
                        );
                    }
                }
            }
        }
        assert!(checked > 0, "no seed exercised a core-crossing leg");
    }

    #[test]
    fn detour_waypoint_clears_core() {
        let (city, ..) = setup();
        let a = (-15_000.0, -200.0);
        let b = (15_000.0, 150.0);
        let w = core_detour_waypoint(&city, a, b).expect("segment crosses core");
        let r = (w.0 * w.0 + w.1 * w.1).sqrt();
        assert!(r > city.core_radius_m * 1.2);
        assert!(core_detour_waypoint(&city, (-15_000.0, 14_000.0), (15_000.0, 14_000.0)).is_none());
    }

    #[test]
    fn closest_point_on_segment_cases() {
        let a = (0.0, 0.0);
        let b = (10.0, 0.0);
        assert_eq!(closest_point_on_segment(a, b, (5.0, 5.0)), (5.0, 0.0));
        assert_eq!(closest_point_on_segment(a, b, (-5.0, 5.0)), (0.0, 0.0));
        assert_eq!(closest_point_on_segment(a, b, (15.0, 5.0)), (10.0, 0.0));
        assert_eq!(closest_point_on_segment(a, a, (3.0, 4.0)), a);
    }

    #[test]
    fn micro_stops_do_not_create_long_dwells_off_site() {
        // No stretch of ≥ 900 s outside planned stays may sit within 100 m.
        let (sim, ..) = simulate_one(9);
        let pts = &sim.track;
        for i in 0..pts.len() {
            if pts[i].staying {
                continue;
            }
            for j in (i + 1)..pts.len() {
                if dist((pts[i].x, pts[i].y), (pts[j].x, pts[j].y)) > 400.0 {
                    break;
                }
                if pts[j].staying {
                    break;
                }
                assert!(
                    pts[j].t - pts[i].t < 900,
                    "spurious dwell from t={} to t={}",
                    pts[i].t,
                    pts[j].t
                );
            }
        }
    }
}
