//! Labelled samples and the 8:1:1 disjoint-truck dataset split.
//!
//! Mirrors the paper's evaluation protocol (Section VI-A): one-day raw
//! trajectories with ground-truth loaded trajectories, split into
//! train/validation/test at ratio 8:1:1 such that **the trucks of the
//! validation and test sets never appear in the training set** — so methods
//! are evaluated on unseen trucks visiting (partly) unseen sites.

use crate::city::City;
use crate::config::SynthConfig;
use crate::gps::record;
use crate::itinerary::{plan_day, TruckProfile};
use crate::motion::{simulate, TruthLabel as MotionTruth};
use lead_geo::Trajectory;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ground-truth loading/unloading intervals of a sample (re-exported from the
/// motion simulator; seconds after midnight).
pub type TruthLabel = MotionTruth;

/// One labelled one-day raw trajectory.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The generating truck.
    pub truck_id: u32,
    /// Day index for this truck (0-based).
    pub day: u32,
    /// The noisy raw trajectory, as the GPS sensor recorded it.
    pub raw: Trajectory,
    /// Ground truth: when the truck actually loaded and unloaded.
    pub truth: TruthLabel,
    /// Number of stops the itinerary planned (= expected stay points).
    pub planned_stays: usize,
}

/// A generated dataset: the city plus the three splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The world the samples were recorded in (POI database included).
    pub city: City,
    /// Training samples (~80 % of trucks).
    pub train: Vec<Sample>,
    /// Validation samples (~10 % of trucks, disjoint from training).
    pub val: Vec<Sample>,
    /// Test samples (~10 % of trucks, disjoint from both).
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Total number of samples across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generates the full dataset from `config` (deterministic in `config.seed`).
pub fn generate_dataset(config: &SynthConfig) -> Dataset {
    config.validate();
    let city = City::generate(config);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0xA24B_AED4).wrapping_add(2));

    // Truck split first (disjoint trucks across splits), then samples.
    let n = config.num_trucks;
    let n_val = (n / 10).max(1);
    let n_test = (n / 10).max(1);
    let n_train = n - n_val - n_test;

    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();

    for truck_idx in 0..n {
        let truck = TruckProfile::generate(&city, config, &mut rng, truck_idx as u32);
        for day in 0..config.days_per_truck {
            let plan = plan_day(&city, config, &truck, &mut rng);
            let sim = simulate(&city, config, &plan, &mut rng);
            let raw = record(config, &city.proj, &sim.track, &mut rng);
            let sample = Sample {
                truck_id: truck.id,
                day: day as u32,
                raw,
                truth: sim.truth,
                planned_stays: plan.num_stays(),
            };
            if truck_idx < n_train {
                train.push(sample);
            } else if truck_idx < n_train + n_val {
                val.push(sample);
            } else {
                test.push(sample);
            }
        }
    }

    Dataset {
        city,
        train,
        val,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny_dataset() -> Dataset {
        generate_dataset(&SynthConfig::tiny())
    }

    #[test]
    fn split_sizes_follow_8_1_1() {
        let cfg = SynthConfig::tiny();
        let ds = tiny_dataset();
        assert_eq!(ds.len(), cfg.total_samples());
        let trucks = |s: &[Sample]| s.iter().map(|x| x.truck_id).collect::<HashSet<_>>();
        let n_val = trucks(&ds.val).len();
        let n_test = trucks(&ds.test).len();
        assert_eq!(n_val, (cfg.num_trucks / 10).max(1));
        assert_eq!(n_test, (cfg.num_trucks / 10).max(1));
    }

    #[test]
    fn splits_have_disjoint_trucks() {
        let ds = tiny_dataset();
        let t: HashSet<u32> = ds.train.iter().map(|s| s.truck_id).collect();
        let v: HashSet<u32> = ds.val.iter().map(|s| s.truck_id).collect();
        let e: HashSet<u32> = ds.test.iter().map(|s| s.truck_id).collect();
        assert!(t.is_disjoint(&v));
        assert!(t.is_disjoint(&e));
        assert!(v.is_disjoint(&e));
    }

    #[test]
    fn samples_are_chronological_and_sized() {
        let ds = tiny_dataset();
        for s in ds.train.iter().chain(&ds.val).chain(&ds.test) {
            assert!(s.raw.len() > 30, "trajectory too short: {}", s.raw.len());
            assert!(s.raw.points().windows(2).all(|w| w[0].t < w[1].t));
            assert!((3..=14).contains(&s.planned_stays));
        }
    }

    #[test]
    fn truth_lies_within_the_trajectory_time_span() {
        let ds = tiny_dataset();
        for s in ds.train.iter().chain(&ds.test) {
            let t0 = s.raw.first().unwrap().t;
            let t1 = s.raw.last().unwrap().t;
            assert!(s.truth.load_start_s >= t0 && s.truth.unload_end_s <= t1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(b.train.iter()) {
            assert_eq!(x.raw.points(), y.raw.points());
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthConfig::tiny();
        let a = generate_dataset(&cfg);
        cfg.seed += 1;
        let b = generate_dataset(&cfg);
        assert_ne!(a.train[0].raw.points()[0], b.train[0].raw.points()[0]);
    }
}
