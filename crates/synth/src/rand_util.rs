//! Small sampling helpers shared by the generator modules.

use rand::Rng;

/// Standard normal sample via Box–Muller.
pub(crate) fn randn<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniform `i64` in the inclusive range `(lo, hi)`.
pub(crate) fn uniform_i64<R: Rng>(rng: &mut R, range: (i64, i64)) -> i64 {
    if range.0 >= range.1 {
        return range.0;
    }
    rng.gen_range(range.0..=range.1)
}

/// Uniform `f64` in `[lo, hi)`.
pub(crate) fn uniform_f64<R: Rng>(rng: &mut R, range: (f64, f64)) -> f64 {
    if range.0 >= range.1 {
        return range.0;
    }
    rng.gen_range(range.0..range.1)
}

/// Samples an index according to (not necessarily normalised) weights.
pub(crate) fn weighted_index<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive mass");
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_i64_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(uniform_i64(&mut rng, (5, 5)), 5);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&mut rng, &[0.2, 0.3, 0.5])] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.2).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.5).abs() < 0.02);
    }
}
