//! The synthetic city: urban core, industrial zones, sites, and the POI
//! database.
//!
//! Layout principles (mirroring a chemicals-industry prefecture like
//! Nantong):
//! - an **urban core** disc at the center — dense ordinary POIs, no chemical
//!   sites, off-limits to loaded trucks;
//! - several **industrial zones** in a ring outside the core hosting loading
//!   sites, many unloading sites, and *also* some break sites (so an
//!   industrial-looking POI context does not imply loading — the paper's
//!   complex staying scenarios);
//! - **fueling stations** scattered along the ring and periphery, serving as
//!   both loading sites for fuel tankers and break spots for every driver;
//! - each site gets a small POI *context cluster* so that LEAD's 100 m POI
//!   counts are informative.

use crate::config::SynthConfig;
use crate::poi::{Poi, PoiCategory, PoiDatabase};
use crate::rand_util::{randn, uniform_f64};
use lead_geo::{BoundingBox, LocalProjection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named location trucks can drive to, in both local meters and WGS84.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Site {
    /// East offset from the city center, meters.
    pub x: f64,
    /// North offset from the city center, meters.
    pub y: f64,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lng: f64,
    /// The POI category of the site itself.
    pub category: PoiCategory,
}

/// The generated city.
#[derive(Debug, Clone)]
pub struct City {
    /// Extent of the city.
    pub bbox: BoundingBox,
    /// Local meter projection anchored at the city center.
    pub proj: LocalProjection,
    /// Radius of the urban core around `(0, 0)` in meters.
    pub core_radius_m: f64,
    /// All POIs, radius-queryable.
    pub poi_db: PoiDatabase,
    /// Loading-capable sites (includes fueling stations for fuel tankers).
    pub loading_sites: Vec<Site>,
    /// Unloading-capable sites.
    pub unloading_sites: Vec<Site>,
    /// Fueling stations (subset view; also present in `loading_sites`).
    pub fueling_sites: Vec<Site>,
    /// Break-friendly ordinary sites.
    pub break_sites: Vec<Site>,
    /// Truck depots.
    pub depots: Vec<Site>,
}

impl City {
    /// Generates a city from `config` (deterministic in `config.seed`).
    pub fn generate(config: &SynthConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let proj = LocalProjection::new(config.city_center.0, config.city_center.1);
        let half = config.city_half_extent_m;
        let core_r = config.urban_core_radius_m;

        let (min_lat, min_lng) = proj.to_latlng(-half, -half);
        let (max_lat, max_lng) = proj.to_latlng(half, half);
        let bbox = BoundingBox::new(
            min_lat.min(max_lat),
            min_lng.min(max_lng),
            min_lat.max(max_lat),
            min_lng.max(max_lng),
        );

        // Industrial zone centers: a ring between the core and the edge.
        let zone_ring = (core_r * 1.6, half * 0.85);
        let zones: Vec<(f64, f64)> = (0..config.num_industrial_zones)
            .map(|i| {
                let angle = i as f64 / config.num_industrial_zones as f64 * std::f64::consts::TAU
                    + rng.gen_range(-0.3..0.3);
                let r = uniform_f64(&mut rng, zone_ring);
                (r * angle.cos(), r * angle.sin())
            })
            .collect();

        let mut pois: Vec<Poi> = Vec::new();
        let make_site = |x: f64, y: f64, category: PoiCategory, pois: &mut Vec<Poi>| {
            let (lat, lng) = proj.to_latlng(x, y);
            pois.push(Poi { lat, lng, category });
            Site {
                x,
                y,
                lat,
                lng,
                category,
            }
        };

        // Context POIs sprinkled around a site so 100 m POI counts are
        // informative about the site's character.
        let sprinkle = |rng: &mut StdRng,
                        x: f64,
                        y: f64,
                        cats: &[PoiCategory],
                        n: usize,
                        spread_m: f64,
                        pois: &mut Vec<Poi>| {
            for _ in 0..n {
                let dx = randn(rng) * spread_m;
                let dy = randn(rng) * spread_m;
                let (lat, lng) = proj.to_latlng(x + dx, y + dy);
                let category = cats[rng.gen_range(0..cats.len())];
                pois.push(Poi { lat, lng, category });
            }
        };

        let industrial_context = [
            PoiCategory::Factory,
            PoiCategory::Company,
            PoiCategory::ChemicalWarehouse,
            PoiCategory::LogisticsCenter,
            PoiCategory::IndustrialPark,
        ];
        let urban_context = [
            PoiCategory::Restaurant,
            PoiCategory::Supermarket,
            PoiCategory::Residential,
            PoiCategory::School,
            PoiCategory::Company,
            PoiCategory::BusStation,
            PoiCategory::Government,
            PoiCategory::Park,
        ];

        // Loading sites live inside industrial zones.
        let loading_cats = [
            PoiCategory::ChemicalFactory,
            PoiCategory::OilDepot,
            PoiCategory::Port,
            PoiCategory::FuelStorage,
            PoiCategory::ChemicalWarehouse,
        ];
        let mut loading_sites = Vec::with_capacity(config.num_loading_sites);
        for i in 0..config.num_loading_sites {
            let (zx, zy) = zones[i % zones.len()];
            let x = zx + randn(&mut rng) * 1_400.0;
            let y = zy + randn(&mut rng) * 1_400.0;
            let cat = loading_cats[rng.gen_range(0..loading_cats.len())];
            let site = make_site(x, y, cat, &mut pois);
            let n_ctx = rng.gen_range(3..8);
            sprinkle(&mut rng, x, y, &industrial_context, n_ctx, 70.0, &mut pois);
            loading_sites.push(site);
        }

        // Unloading sites: most in/near industrial zones, some spread wide
        // (construction sites, hospitals at the core boundary).
        let unloading_cats = [
            PoiCategory::Factory,
            PoiCategory::Hospital,
            PoiCategory::ConstructionSite,
            PoiCategory::PowerPlant,
            PoiCategory::IndustrialPark,
            PoiCategory::WaterTreatmentPlant,
            PoiCategory::SteelMill,
            PoiCategory::PharmaceuticalPlant,
            PoiCategory::PaperMill,
        ];
        let mut unloading_sites = Vec::with_capacity(config.num_unloading_sites);
        for i in 0..config.num_unloading_sites {
            let (x, y) = if i % 3 == 0 {
                // Spread anywhere outside the core.
                sample_outside_core(&mut rng, half, core_r * 1.15)
            } else {
                let (zx, zy) = zones[i % zones.len()];
                (
                    zx + randn(&mut rng) * 2_200.0,
                    zy + randn(&mut rng) * 2_200.0,
                )
            };
            let (x, y) = push_outside_core(x, y, core_r * 1.15);
            let cat = unloading_cats[rng.gen_range(0..unloading_cats.len())];
            let site = make_site(x, y, cat, &mut pois);
            let n_ctx = rng.gen_range(2..6);
            sprinkle(&mut rng, x, y, &industrial_context, n_ctx, 70.0, &mut pois);
            unloading_sites.push(site);
        }

        // Fueling stations: along the ring and periphery; dual-use.
        let mut fueling_sites = Vec::with_capacity(config.num_fueling_stations);
        for _ in 0..config.num_fueling_stations {
            let (x, y) = sample_outside_core(&mut rng, half, core_r * 1.05);
            let site = make_site(x, y, PoiCategory::FuelingStation, &mut pois);
            // Fueling stations look like fueling stations everywhere: a shop,
            // a parking lot, sometimes a restaurant.
            let n_ctx = rng.gen_range(1..4);
            sprinkle(
                &mut rng,
                x,
                y,
                &[
                    PoiCategory::ParkingLot,
                    PoiCategory::Supermarket,
                    PoiCategory::Restaurant,
                ],
                n_ctx,
                60.0,
                &mut pois,
            );
            fueling_sites.push(site);
        }

        // Break sites: half near industrial zones (ambiguous context!), half
        // spread across the city.
        let break_cats = [
            PoiCategory::Restaurant,
            PoiCategory::RestArea,
            PoiCategory::ParkingLot,
            PoiCategory::Hotel,
        ];
        let mut break_sites = Vec::with_capacity(config.num_break_sites);
        for i in 0..config.num_break_sites {
            let industrial = rng.gen_bool(config.industrial_break_fraction);
            let (x, y) = if industrial {
                let (zx, zy) = zones[i % zones.len()];
                (
                    zx + randn(&mut rng) * 1_800.0,
                    zy + randn(&mut rng) * 1_800.0,
                )
            } else {
                sample_outside_core(&mut rng, half, core_r * 1.05)
            };
            let (x, y) = push_outside_core(x, y, core_r * 1.05);
            let cat = break_cats[rng.gen_range(0..break_cats.len())];
            let site = make_site(x, y, cat, &mut pois);
            let n_ctx = rng.gen_range(1..5);
            if industrial {
                // Industrial-adjacent breaks inherit industrial POI context —
                // the stay point alone cannot tell them from loading stops.
                sprinkle(&mut rng, x, y, &industrial_context, n_ctx, 80.0, &mut pois);
            } else {
                sprinkle(&mut rng, x, y, &urban_context[..6], n_ctx, 80.0, &mut pois);
            }
            break_sites.push(site);
        }

        // Depots: periphery.
        let mut depots = Vec::with_capacity(config.num_depots);
        for _ in 0..config.num_depots {
            let (x, y) = sample_outside_core(&mut rng, half, core_r * 1.3);
            let site = make_site(x, y, PoiCategory::TruckDepot, &mut pois);
            let n_ctx = rng.gen_range(2..5);
            sprinkle(
                &mut rng,
                x,
                y,
                &[
                    PoiCategory::ParkingLot,
                    PoiCategory::RepairShop,
                    PoiCategory::LogisticsCenter,
                ],
                n_ctx,
                60.0,
                &mut pois,
            );
            depots.push(site);
        }

        // Background urban clutter: dense inside the core, sparse outside.
        for _ in 0..config.num_background_pois {
            let (x, y) = if rng.gen_bool(0.55) {
                // Urban core.
                let r = core_r * rng.gen_range(0.0f64..1.0).sqrt();
                let a = rng.gen_range(0.0..std::f64::consts::TAU);
                (r * a.cos(), r * a.sin())
            } else {
                (rng.gen_range(-half..half), rng.gen_range(-half..half))
            };
            let (lat, lng) = proj.to_latlng(x, y);
            let category = urban_context[rng.gen_range(0..urban_context.len())];
            pois.push(Poi { lat, lng, category });
        }

        City {
            bbox,
            proj,
            core_radius_m: core_r,
            poi_db: PoiDatabase::new(pois),
            loading_sites,
            unloading_sites,
            fueling_sites,
            break_sites,
            depots,
        }
    }

    /// Whether local point `(x, y)` lies inside the urban core.
    pub fn in_core(&self, x: f64, y: f64) -> bool {
        x * x + y * y < self.core_radius_m * self.core_radius_m
    }
}

/// Uniform sample in the square of half-extent `half`, rejecting the disc of
/// radius `min_r` around the origin.
fn sample_outside_core<R: Rng>(rng: &mut R, half: f64, min_r: f64) -> (f64, f64) {
    loop {
        let x = rng.gen_range(-half..half);
        let y = rng.gen_range(-half..half);
        if x * x + y * y >= min_r * min_r {
            return (x, y);
        }
    }
}

/// Radially pushes `(x, y)` out of the disc of radius `min_r` if inside.
fn push_outside_core(x: f64, y: f64, min_r: f64) -> (f64, f64) {
    let r = (x * x + y * y).sqrt();
    if r >= min_r {
        return (x, y);
    }
    if r < 1.0 {
        return (min_r, 0.0);
    }
    (x / r * min_r, y / r * min_r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city() -> City {
        City::generate(&SynthConfig::tiny())
    }

    #[test]
    fn site_counts_match_config() {
        let cfg = SynthConfig::tiny();
        let c = City::generate(&cfg);
        assert_eq!(c.loading_sites.len(), cfg.num_loading_sites);
        assert_eq!(c.unloading_sites.len(), cfg.num_unloading_sites);
        assert_eq!(c.fueling_sites.len(), cfg.num_fueling_stations);
        assert_eq!(c.break_sites.len(), cfg.num_break_sites);
        assert_eq!(c.depots.len(), cfg.num_depots);
        assert!(c.poi_db.len() > cfg.num_background_pois);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = city();
        let b = city();
        assert_eq!(a.loading_sites, b.loading_sites);
        assert_eq!(a.poi_db.len(), b.poi_db.len());
    }

    #[test]
    fn no_hct_sites_inside_core() {
        let c = city();
        for s in c
            .loading_sites
            .iter()
            .chain(&c.unloading_sites)
            .chain(&c.fueling_sites)
            .chain(&c.depots)
        {
            assert!(!c.in_core(s.x, s.y), "site {s:?} inside core");
        }
    }

    #[test]
    fn sites_carry_consistent_coordinates() {
        let c = city();
        for s in c.loading_sites.iter().chain(&c.break_sites) {
            let (lat, lng) = c.proj.to_latlng(s.x, s.y);
            assert!((lat - s.lat).abs() < 1e-9 && (lng - s.lng).abs() < 1e-9);
            assert!(c.bbox.expanded(0.05).contains(s.lat, s.lng));
        }
    }

    #[test]
    fn loading_sites_have_industrial_poi_context() {
        let c = city();
        let mut with_context = 0;
        for s in &c.loading_sites {
            let counts = c.poi_db.category_counts_within(s.lat, s.lng, 150.0);
            let industrial: u32 = [
                PoiCategory::ChemicalFactory,
                PoiCategory::Factory,
                PoiCategory::Company,
                PoiCategory::ChemicalWarehouse,
                PoiCategory::LogisticsCenter,
                PoiCategory::IndustrialPark,
                PoiCategory::OilDepot,
                PoiCategory::Port,
                PoiCategory::FuelStorage,
            ]
            .iter()
            .map(|c| counts[c.index()])
            .sum();
            if industrial >= 2 {
                with_context += 1;
            }
        }
        assert!(
            with_context * 10 >= c.loading_sites.len() * 8,
            "most loading sites must have industrial context: {with_context}/{}",
            c.loading_sites.len()
        );
    }

    #[test]
    fn push_outside_core_is_idempotent_outside() {
        assert_eq!(push_outside_core(5000.0, 0.0, 1000.0), (5000.0, 0.0));
        let (x, y) = push_outside_core(10.0, 10.0, 1000.0);
        assert!((x * x + y * y).sqrt() >= 999.9);
        assert_eq!(push_outside_core(0.0, 0.0, 1000.0), (1000.0, 0.0));
    }
}
