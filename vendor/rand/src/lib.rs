//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand` the code actually uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which the repo's fixed-seed reproducibility tests rely on. Stream values
//! differ from upstream `rand`'s `StdRng` (ChaCha12); nothing in this
//! repository depends on upstream streams, only on determinism.

/// A source of random 64-bit values.
pub trait RngCore {
    /// The next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit value (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`]. The single blanket impl per
/// shape ties the output type to the range's own parameter so that float
/// literals in calls like `gen_range(-0.3..0.3)` infer from context.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Uniform in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the subset of upstream `SliceRandom` in use).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=8);
            assert!((3..=8).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0f64..1.0);
            lo_seen |= v < 0.1;
            hi_seen |= v > 0.9;
        }
        assert!(lo_seen && hi_seen, "poor coverage of the unit interval");
    }
}
