//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `criterion` its benches use:
//! [`black_box`], [`Criterion`] with `bench_function` / `benchmark_group` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of upstream's
//! statistical engine it runs a warm-up pass, scales the iteration count to
//! a per-sample time budget, and reports mean / min / max ns per iteration —
//! enough to compare configurations (e.g. 1-thread vs N-thread) on one
//! machine. Honours `CRITERION_SAMPLE_MS` to shrink runtimes in CI.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group, e.g. `stacked_bilstm/8`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Target wall-clock budget for the measurement phase of one sample.
    sample_budget: Duration,
    samples: usize,
    results: Option<Stats>,
}

#[derive(Clone, Copy)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, first calibrating how many iterations fit in the
    /// sample budget, then timing `samples` batches of that size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: run one iteration, estimate per-iter cost, pick a
        // batch size that fills the sample budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        // Warm-up batch (not recorded).
        for _ in 0..batch.min(16) {
            black_box(routine());
        }

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
        self.results = Some(Stats {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters: batch * self.samples as u64,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{:.1} ns", ns)
    }
}

fn default_sample_ms() -> u64 {
    std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_budget: Duration::from_millis(default_sample_ms()),
        samples: samples.max(2),
        results: None,
    };
    f(&mut b);
    match b.results {
        Some(s) => println!(
            "{:<52} time: [{} {} {}]  ({} iters)",
            label,
            fmt_ns(s.min_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.max_ns),
            s.iters,
        ),
        None => println!(
            "{:<52} (no measurement — Bencher::iter never called)",
            label
        ),
    }
}

/// Top-level benchmark registry, handed to each `criterion_group!` target.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.samples, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 10,
        }
    }

    /// Hook used by `criterion_main!`; mirrors upstream's final report step.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        c.bench_function("probe_direct", |b| b.iter(|| black_box(3u64.pow(7))));
        let mut g = c.benchmark_group("probe_group");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    criterion_group!(smoke, probe);

    #[test]
    fn harness_runs_and_reports() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        smoke();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("d500_t900").id, "d500_t900");
    }
}
