//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `proptest` its test suites actually use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, `any::<T>()`, and the `prop::num::f32` float
//! classes. Generation is fully deterministic: each test function derives
//! its seed from its own path, so failures reproduce across runs. Unlike
//! upstream there is no shrinking — a failing case reports its inputs'
//! case number and seed instead of a minimised counterexample.

/// The generator handed to strategies. Deterministic per test function.
pub type TestRng = rand::rngs::StdRng;

pub mod strategy {
    use super::TestRng;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: uniform over its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose elements come from `elem` and whose length comes
    /// from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod num {
    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use rand::{Rng, RngCore};

        /// A union of IEEE-754 value classes, combinable with `|`.
        #[derive(Clone, Copy, Debug)]
        pub struct FloatClass(u8);

        /// Normal (full-exponent-range, non-zero) finite values of both signs.
        pub const NORMAL: FloatClass = FloatClass(1);
        /// Positive and negative zero.
        pub const ZERO: FloatClass = FloatClass(2);
        /// Subnormal values of both signs.
        pub const SUBNORMAL: FloatClass = FloatClass(4);
        /// Positive and negative infinity.
        pub const INFINITE: FloatClass = FloatClass(8);

        impl core::ops::BitOr for FloatClass {
            type Output = FloatClass;

            fn bitor(self, rhs: FloatClass) -> FloatClass {
                FloatClass(self.0 | rhs.0)
            }
        }

        impl Strategy for FloatClass {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                let classes: Vec<u8> = (0..4)
                    .map(|b| 1u8 << b)
                    .filter(|b| self.0 & b != 0)
                    .collect();
                assert!(!classes.is_empty(), "empty float class union");
                let pick = classes[rng.gen_range(0..classes.len())];
                let sign = (rng.next_u32() & 1) << 31;
                match pick {
                    1 => {
                        // Normal: exponent field in 1..=254, random mantissa.
                        let exp = rng.gen_range(1u32..=254) << 23;
                        let mant = rng.next_u32() & 0x007F_FFFF;
                        f32::from_bits(sign | exp | mant)
                    }
                    2 => f32::from_bits(sign),
                    4 => {
                        // Subnormal: zero exponent, non-zero mantissa.
                        let mant = (rng.next_u32() & 0x007F_FFFF).max(1);
                        f32::from_bits(sign | mant)
                    }
                    _ => f32::from_bits(sign | 0x7F80_0000),
                }
            }
        }
    }
}

/// Namespace mirror of upstream's `proptest::prop` re-export module.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
}

pub mod test_runner {
    use rand::SeedableRng;

    /// A failed property assertion, carrying its message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Number of cases per property; override with `PROPTEST_CASES`.
    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Drives one property: `cases` deterministic seeds derived from the
    /// test path, each handed a fresh generator. Panics on the first
    /// failing case with enough detail to replay it.
    pub fn run<F>(name: &str, body: F)
    where
        F: Fn(&mut super::TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let cases = case_count();
        for case in 0..cases {
            let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = super::TestRng::seed_from_u64(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "property {} failed at case {}/{} (seed {:#018x}): {}",
                    name,
                    case + 1,
                    cases,
                    seed,
                    e
                );
            }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically generated
/// inputs. Use [`prop_assert!`]/[`prop_assert_eq!`] inside the body.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                |rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), rng);
                    )+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// optional formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 0usize..10,
            pair in (1.0..2.0f64, -3i64..3),
        ) {
            prop_assert!(x < 10);
            prop_assert!((1.0..2.0).contains(&pair.0));
            prop_assert!((-3..3).contains(&pair.1));
        }

        #[test]
        fn vec_respects_size_range(v in prop::collection::vec(0u8..255, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(v in (0i64..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((0..100).contains(&v));
        }

        #[test]
        fn float_classes_generate_members(
            vals in prop::collection::vec(
                prop::num::f32::NORMAL | prop::num::f32::ZERO,
                8,
            ),
        ) {
            for v in vals {
                prop_assert!(v.is_normal() || v == 0.0, "unexpected class for {}", v);
            }
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::strategy::Strategy;
        use std::cell::RefCell;
        let a = RefCell::new(Vec::new());
        let b = RefCell::new(Vec::new());
        for out in [&a, &b] {
            crate::test_runner::run("stability_probe", |rng| {
                out.borrow_mut().push((0u64..u64::MAX).generate(rng));
                Ok(())
            });
        }
        assert_eq!(a.into_inner(), b.into_inner());
    }
}
