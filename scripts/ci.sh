#!/usr/bin/env bash
# The full local CI gate: tier-1 (release build + tests), formatting, lints.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# The SIMD determinism contract is only as good as its weakest backend: run
# the NN suite again pinned to the scalar reference, so a bug that only the
# scalar path has (or that AVX2 masks) cannot slip through on AVX2 machines.
echo "==> LEAD_SIMD_FORCE=scalar cargo test -q -p lead-nn"
LEAD_SIMD_FORCE=scalar cargo test -q -p lead-nn

# Planted-divergence self-test: the parity battery must actually catch a
# kernel whose rounding differs (an FMA'd dot). If this test vanishes or
# stops detecting the fixture, the whole parity gate is decorative.
echo "==> simd parity self-test (planted FMA kernel must be caught)"
cargo test -q -p lead-nn --test proptest_simd planted_fma_kernel_is_caught_by_the_battery

# Lint fixtures are deliberately unformatted test inputs, so they are
# excluded (rustfmt's `ignore` config is nightly-only; exclusion happens in
# the file list instead).
echo "==> rustfmt --check (crates/lint/fixtures excluded)"
git ls-files '*.rs' ':!:crates/lint/fixtures/*' | xargs rustfmt --check --edition 2021

echo "==> cargo run -p lead-lint --release (baseline ratchet, JSON report)"
mkdir -p results
if ! cargo run -q -p lead-lint --release -- --format json --baseline lint.baseline > results/lint.json; then
    cat results/lint.json
    echo "lead-lint gate failed (see results/lint.json)"
    exit 1
fi

echo "==> lead-lint R10 self-test (planted unsafe-contract violations must fail)"
R10_TMP="target/tmp/r10-selftest"
rm -rf "$R10_TMP"
mkdir -p "$R10_TMP/crates/nn/src/simd" "$R10_TMP/crates/geo/src"
printf '[workspace]\nmembers = ["crates/*"]\n' > "$R10_TMP/Cargo.toml"
printf '[package]\nname = "lead-nn"\n\n[package.metadata.lead]\nclass = "result-lib"\n' \
    > "$R10_TMP/crates/nn/Cargo.toml"
printf '//! N.\n#![deny(unsafe_code)]\n#![deny(missing_docs)]\n' > "$R10_TMP/crates/nn/src/lib.rs"
# Planted violation 1: an un-SAFETY'd unsafe site inside the sanctioned module.
printf '//! K.\n\nfn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n' \
    > "$R10_TMP/crates/nn/src/simd/kernel.rs"
# Planted violation 2: a library crate whose root is missing forbid(unsafe_code).
printf '[package]\nname = "lead-geo"\n\n[package.metadata.lead]\nclass = "lib"\n' \
    > "$R10_TMP/crates/geo/Cargo.toml"
printf '//! G.\n#![deny(missing_docs)]\n' > "$R10_TMP/crates/geo/src/lib.rs"
if cargo run -q -p lead-lint --release -- --root "$R10_TMP" > "$R10_TMP/out.txt"; then
    echo "lead-lint R10 self-test failed: planted violations were NOT caught"
    exit 1
fi
if [ "$(grep -c 'unsafe-contract' "$R10_TMP/out.txt")" -lt 2 ]; then
    echo "lead-lint R10 self-test failed: expected both planted unsafe-contract diagnostics"
    cat "$R10_TMP/out.txt"
    exit 1
fi

# Binary-format gate: a CSV -> binary -> CSV round trip must be byte-exact
# (the sample uses grid-aligned coordinates, so fixed-point encoding is
# provably lossless), and a planted flipped byte inside the first record
# payload must make `verify` fail — otherwise the checksum layer is
# decorative.
echo "==> data-convert round-trip + planted-corruption self-test"
DC_TMP="target/tmp/data-convert-selftest"
rm -rf "$DC_TMP"
mkdir -p "$DC_TMP"
DC="target/release/data-convert"
"$DC" sample-csv "$DC_TMP/sample.csv"
"$DC" csv2bin "$DC_TMP/sample.csv" "$DC_TMP/sample.leadbin"
"$DC" verify "$DC_TMP/sample.leadbin"
"$DC" bin2csv "$DC_TMP/back.csv" "$DC_TMP/sample.leadbin"
if ! cmp -s "$DC_TMP/sample.csv" "$DC_TMP/back.csv"; then
    echo "data-convert self-test failed: csv -> bin -> csv round trip is not byte-exact"
    exit 1
fi
# Offset 40: past the 20-byte header and 12-byte frame preamble, inside the
# first record's payload.
"$DC" corrupt "$DC_TMP/sample.leadbin" 40
if "$DC" verify "$DC_TMP/sample.leadbin"; then
    echo "data-convert self-test failed: planted corruption was NOT detected"
    exit 1
fi

echo "==> bench-ratchet self-test (the gate must catch a planted regression)"
cargo run -q -p lead-bench --release --bin bench_ratchet -- --self-test

echo "==> bench-ratchet gate (results/BENCH_9.json vs bench.baseline)"
cargo run -q -p lead-bench --release --bin bench_ratchet -- \
    --write results/BENCH_9.json --baseline bench.baseline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Deterministic artifact listing: uploads of results/ must not depend on
# filesystem enumeration order or locale.
echo "==> results/ artifacts"
find results -type f | LC_ALL=C sort

echo "CI gate passed."
