#!/usr/bin/env bash
# The full local CI gate: tier-1 (release build + tests), formatting, lints.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Lint fixtures are deliberately unformatted test inputs, so they are
# excluded (rustfmt's `ignore` config is nightly-only; exclusion happens in
# the file list instead).
echo "==> rustfmt --check (crates/lint/fixtures excluded)"
git ls-files '*.rs' ':!:crates/lint/fixtures/*' | xargs rustfmt --check --edition 2021

echo "==> cargo run -p lead-lint --release (baseline ratchet, JSON report)"
mkdir -p results
if ! cargo run -q -p lead-lint --release -- --format json --baseline lint.baseline > results/lint.json; then
    cat results/lint.json
    echo "lead-lint gate failed (see results/lint.json)"
    exit 1
fi

echo "==> bench-ratchet self-test (the gate must catch a planted regression)"
cargo run -q -p lead-bench --release --bin bench_ratchet -- --self-test

echo "==> bench-ratchet gate (results/BENCH_6.json vs bench.baseline)"
cargo run -q -p lead-bench --release --bin bench_ratchet -- \
    --write results/BENCH_6.json --baseline bench.baseline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Deterministic artifact listing: uploads of results/ must not depend on
# filesystem enumeration order or locale.
echo "==> results/ artifacts"
find results -type f | LC_ALL=C sort

echo "CI gate passed."
