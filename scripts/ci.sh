#!/usr/bin/env bash
# The full local CI gate: tier-1 (release build + tests), formatting, lints.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# The SIMD determinism contract is only as good as its weakest backend: run
# the NN suite again pinned to the scalar reference, so a bug that only the
# scalar path has (or that AVX2 masks) cannot slip through on AVX2 machines.
echo "==> LEAD_SIMD_FORCE=scalar cargo test -q -p lead-nn"
LEAD_SIMD_FORCE=scalar cargo test -q -p lead-nn

# Planted-divergence self-test: the parity battery must actually catch a
# kernel whose rounding differs (an FMA'd dot). If this test vanishes or
# stops detecting the fixture, the whole parity gate is decorative.
echo "==> simd parity self-test (planted FMA kernel must be caught)"
cargo test -q -p lead-nn --test proptest_simd planted_fma_kernel_is_caught_by_the_battery

# Lint fixtures are deliberately unformatted test inputs, so they are
# excluded (rustfmt's `ignore` config is nightly-only; exclusion happens in
# the file list instead).
echo "==> rustfmt --check (crates/lint/fixtures excluded)"
git ls-files '*.rs' ':!:crates/lint/fixtures/*' | xargs rustfmt --check --edition 2021

echo "==> cargo run -p lead-lint --release (baseline ratchet, JSON report)"
mkdir -p results
if ! cargo run -q -p lead-lint --release -- --format json --baseline lint.baseline > results/lint.json; then
    cat results/lint.json
    echo "lead-lint gate failed (see results/lint.json)"
    exit 1
fi

echo "==> lead-lint R10 self-test (planted unsafe-contract violations must fail)"
R10_TMP="target/tmp/r10-selftest"
rm -rf "$R10_TMP"
mkdir -p "$R10_TMP/crates/nn/src/simd" "$R10_TMP/crates/geo/src"
printf '[workspace]\nmembers = ["crates/*"]\n' > "$R10_TMP/Cargo.toml"
printf '[package]\nname = "lead-nn"\n\n[package.metadata.lead]\nclass = "result-lib"\n' \
    > "$R10_TMP/crates/nn/Cargo.toml"
printf '//! N.\n#![deny(unsafe_code)]\n#![deny(missing_docs)]\n' > "$R10_TMP/crates/nn/src/lib.rs"
# Planted violation 1: an un-SAFETY'd unsafe site inside the sanctioned module.
printf '//! K.\n\nfn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n' \
    > "$R10_TMP/crates/nn/src/simd/kernel.rs"
# Planted violation 2: a library crate whose root is missing forbid(unsafe_code).
printf '[package]\nname = "lead-geo"\n\n[package.metadata.lead]\nclass = "lib"\n' \
    > "$R10_TMP/crates/geo/Cargo.toml"
printf '//! G.\n#![deny(missing_docs)]\n' > "$R10_TMP/crates/geo/src/lib.rs"
if cargo run -q -p lead-lint --release -- --root "$R10_TMP" > "$R10_TMP/out.txt"; then
    echo "lead-lint R10 self-test failed: planted violations were NOT caught"
    exit 1
fi
if [ "$(grep -c 'unsafe-contract' "$R10_TMP/out.txt")" -lt 2 ]; then
    echo "lead-lint R10 self-test failed: expected both planted unsafe-contract diagnostics"
    cat "$R10_TMP/out.txt"
    exit 1
fi

# Interprocedural self-test 1: a `pub fn` of a result-affecting crate that
# reaches `unwrap()` only through a private helper is invisible to the
# file-local panic rule's public-surface argument; R12 must walk the call
# graph and report the full witness path.
echo "==> lead-lint R12 self-test (pub fn reaching a panic via a private helper must fail)"
R12_TMP="target/tmp/r12-selftest"
rm -rf "$R12_TMP"
mkdir -p "$R12_TMP/crates/eval/src"
printf '[workspace]\nmembers = ["crates/*"]\n' > "$R12_TMP/Cargo.toml"
printf '[package]\nname = "lead-eval"\n\n[package.metadata.lead]\nclass = "result-lib"\n' \
    > "$R12_TMP/crates/eval/Cargo.toml"
printf '//! E.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n/// Entry.\npub fn entry(o: Option<u32>) -> u32 {\n    helper(o)\n}\n\nfn helper(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n' \
    > "$R12_TMP/crates/eval/src/lib.rs"
if cargo run -q -p lead-lint --release -- --root "$R12_TMP" > "$R12_TMP/out.txt"; then
    echo "lead-lint R12 self-test failed: planted panic path was NOT caught"
    exit 1
fi
if ! grep -q 'panic-path' "$R12_TMP/out.txt"; then
    echo "lead-lint R12 self-test failed: expected a panic-path diagnostic"
    cat "$R12_TMP/out.txt"
    exit 1
fi
if ! grep -q 'entry → helper' "$R12_TMP/out.txt"; then
    echo "lead-lint R12 self-test failed: expected the witness path 'entry → helper'"
    cat "$R12_TMP/out.txt"
    exit 1
fi

# Interprocedural self-test 2: a wall-clock read laundered through a helper
# crate (eval calls synth's now_ms) must be caught by R13 across the crate
# boundary, not just at the site.
echo "==> lead-lint R13 self-test (a clock laundered through a helper crate must fail)"
R13_TMP="target/tmp/r13-selftest"
rm -rf "$R13_TMP"
mkdir -p "$R13_TMP/crates/eval/src" "$R13_TMP/crates/synth/src"
printf '[workspace]\nmembers = ["crates/*"]\n' > "$R13_TMP/Cargo.toml"
printf '[package]\nname = "lead-eval"\n\n[package.metadata.lead]\nclass = "result-lib"\n\n[dependencies]\nlead-synth = { path = "../synth" }\n' \
    > "$R13_TMP/crates/eval/Cargo.toml"
printf '//! E.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n/// Entry.\npub fn entry() -> u64 {\n    lead_synth::now_ms()\n}\n' \
    > "$R13_TMP/crates/eval/src/lib.rs"
printf '[package]\nname = "lead-synth"\n\n[package.metadata.lead]\nclass = "lib"\n' \
    > "$R13_TMP/crates/synth/Cargo.toml"
printf '//! S.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n/// Now.\npub fn now_ms() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_millis() as u64\n}\n' \
    > "$R13_TMP/crates/synth/src/lib.rs"
if cargo run -q -p lead-lint --release -- --root "$R13_TMP" > "$R13_TMP/out.txt"; then
    echo "lead-lint R13 self-test failed: planted cross-crate taint was NOT caught"
    exit 1
fi
if ! grep -q 'determinism-taint' "$R13_TMP/out.txt"; then
    echo "lead-lint R13 self-test failed: expected a determinism-taint diagnostic"
    cat "$R13_TMP/out.txt"
    exit 1
fi
if ! grep -q 'entry → now_ms' "$R13_TMP/out.txt"; then
    echo "lead-lint R13 self-test failed: expected the witness path 'entry → now_ms'"
    cat "$R13_TMP/out.txt"
    exit 1
fi

# Binary-format gate: a CSV -> binary -> CSV round trip must be byte-exact
# (the sample uses grid-aligned coordinates, so fixed-point encoding is
# provably lossless), and a planted flipped byte inside the first record
# payload must make `verify` fail — otherwise the checksum layer is
# decorative.
echo "==> data-convert round-trip + planted-corruption self-test"
DC_TMP="target/tmp/data-convert-selftest"
rm -rf "$DC_TMP"
mkdir -p "$DC_TMP"
DC="target/release/data-convert"
"$DC" sample-csv "$DC_TMP/sample.csv"
"$DC" csv2bin "$DC_TMP/sample.csv" "$DC_TMP/sample.leadbin"
"$DC" verify "$DC_TMP/sample.leadbin"
"$DC" bin2csv "$DC_TMP/back.csv" "$DC_TMP/sample.leadbin"
if ! cmp -s "$DC_TMP/sample.csv" "$DC_TMP/back.csv"; then
    echo "data-convert self-test failed: csv -> bin -> csv round trip is not byte-exact"
    exit 1
fi
# Offset 40: past the 20-byte header and 12-byte frame preamble, inside the
# first record's payload.
"$DC" corrupt "$DC_TMP/sample.leadbin" 40
if "$DC" verify "$DC_TMP/sample.leadbin"; then
    echo "data-convert self-test failed: planted corruption was NOT detected"
    exit 1
fi

echo "==> bench-ratchet self-test (the gate must catch a planted regression)"
cargo run -q -p lead-bench --release --bin bench_ratchet -- --self-test

echo "==> bench-ratchet gate (results/BENCH_10.json vs bench.baseline)"
cargo run -q -p lead-bench --release --bin bench_ratchet -- \
    --write results/BENCH_10.json --baseline bench.baseline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Deterministic artifact listing: uploads of results/ must not depend on
# filesystem enumeration order or locale.
echo "==> results/ artifacts"
find results -type f | LC_ALL=C sort

echo "CI gate passed."
