#!/usr/bin/env bash
# The full local CI gate: tier-1 (release build + tests), formatting, lints.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo run -p lead-lint --release"
cargo run -q -p lead-lint --release

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI gate passed."
