#!/usr/bin/env python3
"""Injects measured results from results/ into EXPERIMENTS.md placeholders.

Usage: python3 scripts/fill_experiments.py
Idempotent: placeholders are HTML comments that stay in place; the measured
blocks are inserted/updated right after them.
"""
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
EXP = ROOT / "EXPERIMENTS.md"
RESULTS = ROOT / "results"


def code_block(text: str) -> str:
    return "```text\n" + text.rstrip() + "\n```"


def curve_summary(csv_path: Path) -> str:
    """Per-series min/argmin/epochs from a curve CSV."""
    series = {}
    for line in csv_path.read_text().splitlines()[1:]:
        name, epoch, loss = line.rsplit(",", 2)
        series.setdefault(name, []).append(float(loss))
    lines = []
    for name, curve in series.items():
        mn = min(curve)
        arg = curve.index(mn) + 1
        lines.append(
            f"{name}: min {mn:.4f} at epoch {arg} (of {len(curve)}); "
            f"start {curve[0]:.4f}"
        )
    return "\n".join(lines)


def inject(content: str, marker: str, block: str) -> str:
    """Replace whatever follows `marker` up to the next heading/marker."""
    pattern = re.compile(
        re.escape(marker) + r"\n(?:```text\n.*?\n```\n?)?", re.DOTALL
    )
    return pattern.sub(marker + "\n" + block + "\n", content, count=1)


def main() -> None:
    content = EXP.read_text()

    fills = {
        "<!-- TABLE3_MEASURED -->": RESULTS / "table3_quick.txt",
        "<!-- TABLE4_MEASURED -->": RESULTS / "table4_quick.txt",
        "<!-- FIG8_MEASURED -->": RESULTS / "fig8_quick.txt",
        "<!-- IOU_MEASURED -->": RESULTS / "iou_quick.txt",
    }
    for marker, path in fills.items():
        if path.exists():
            content = inject(content, marker, code_block(path.read_text()))
        else:
            print(f"[skip] {path} not found")

    for marker, path in {
        "<!-- FIG9_MEASURED -->": RESULTS / "fig9_quick.csv",
        "<!-- FIG10_MEASURED -->": RESULTS / "fig10_quick.csv",
    }.items():
        if path.exists():
            content = inject(content, marker, code_block(curve_summary(path)))
        else:
            print(f"[skip] {path} not found")

    EXP.write_text(content)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
