//! Falsification tests for the synthetic world's difficulty story: the
//! paper's two challenges (complex staying scenarios, numerous l/u
//! locations) must be what actually breaks the stay-point baselines — turn
//! the confounders off and SP-R must recover.

use lead::baselines::SpR;
use lead::core::config::LeadConfig;
use lead::eval::runner::{test_case, to_train_samples};
use lead::synth::{generate_dataset, SynthConfig};

fn sp_r_accuracy(synth: &SynthConfig) -> f64 {
    let ds = generate_dataset(synth);
    let cfg = LeadConfig::paper();
    let spr = SpR::fit(&to_train_samples(&ds.train), &cfg);
    let mut hits = 0;
    let mut total = 0;
    for s in ds.test.iter().chain(&ds.val) {
        let Some((_, truth)) = test_case(s, &cfg) else {
            continue;
        };
        if let Some(d) = spr.detect(&s.raw) {
            hits += (d.candidate() == truth) as usize;
        }
        total += 1;
    }
    assert!(total > 0, "no scorable samples");
    hits as f64 / total as f64 * 100.0
}

fn base_config() -> SynthConfig {
    let mut cfg = SynthConfig::tiny();
    cfg.num_trucks = 40;
    cfg.days_per_truck = 2;
    cfg
}

#[test]
fn sp_r_recovers_when_confounders_are_disabled() {
    // Hard world: breaks at fueling stations and inside industrial zones.
    let hard = base_config();

    // Easy world: no fueling-station breaks, no industrial-adjacent breaks —
    // every whitelist hit is a genuine l/u stay.
    let mut easy = base_config();
    easy.fueling_break_prob = 0.0;
    easy.industrial_break_fraction = 0.0;

    let acc_hard = sp_r_accuracy(&hard);
    let acc_easy = sp_r_accuracy(&easy);
    assert!(
        acc_easy >= acc_hard + 15.0,
        "removing confounders should rescue SP-R: hard {acc_hard:.1}% vs easy {acc_easy:.1}%"
    );
    assert!(
        acc_easy >= 50.0,
        "without confounders SP-R should be decent, got {acc_easy:.1}%"
    );
}

#[test]
fn sp_r_degrades_when_whitelist_cannot_cover_sites() {
    // Few l/u sites → training covers everything; many sites → coverage gaps
    // (the paper's "numerous loading and unloading locations" challenge).
    let mut few_sites = base_config();
    few_sites.fueling_break_prob = 0.0;
    few_sites.industrial_break_fraction = 0.0;
    few_sites.num_loading_sites = 6;
    few_sites.num_unloading_sites = 10;

    let mut many_sites = few_sites.clone();
    many_sites.num_loading_sites = 60;
    many_sites.num_unloading_sites = 220;
    // One l/u pair per truck day drawn from huge pools: the whitelist from 64
    // training days cannot cover them all.
    many_sites.loading_pool_per_truck = (1, 1);
    many_sites.unloading_pool_per_truck = (1, 1);

    let acc_covered = sp_r_accuracy(&few_sites);
    let acc_uncovered = sp_r_accuracy(&many_sites);
    assert!(
        acc_covered > acc_uncovered,
        "coverage gaps should hurt SP-R: covered {acc_covered:.1}% vs uncovered {acc_uncovered:.1}%"
    );
}
