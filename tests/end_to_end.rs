//! End-to-end integration tests: synthetic world → processing → training →
//! detection, across all LEAD variants and baselines.
//!
//! Sizes are deliberately tiny (these run in debug mode); accuracy is not
//! asserted here — the experiment binaries cover that — only correct wiring,
//! determinism, and structural invariants.

use lead::baselines::{RnnKind, SpR, SpRnn, SpRnnConfig};
use lead::core::config::LeadConfig;
use lead::core::label::truth_stay_indices;
use lead::core::pipeline::{Lead, LeadOptions};
use lead::core::processing::ProcessedTrajectory;
use lead::eval::runner::{test_case, to_train_samples};
use lead::synth::{generate_dataset, Dataset, SynthConfig};

fn micro_dataset() -> Dataset {
    let mut cfg = SynthConfig::tiny();
    cfg.num_trucks = 10;
    cfg.days_per_truck = 2;
    generate_dataset(&cfg)
}

#[test]
fn lead_full_trains_and_detects() {
    let ds = micro_dataset();
    let cfg = LeadConfig::fast_test();
    let train = to_train_samples(&ds.train);
    let (lead, report) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");

    assert!(report.used_samples > 0);
    assert!(!report.ae_curve.is_empty());
    assert!(!report.forward_kld_curve.is_empty());
    assert!(!report.backward_kld_curve.is_empty());
    assert!(report.ae_curve.iter().all(|l| l.is_finite() && *l >= 0.0));

    let mut detections = 0;
    for s in ds.test.iter().chain(&ds.val) {
        if let Some(result) = lead.detect(&s.raw, &ds.city.poi_db) {
            detections += 1;
            let n = result.processed.num_stay_points();
            assert!(result.detected.end_sp < n);
            assert_eq!(result.probabilities.len(), n * (n - 1) / 2);
            assert!(result.probabilities.iter().all(|p| p.is_finite()));
            // The detected interval is within the trajectory and ordered.
            let (a, b) = result.loaded_interval_s();
            assert!(a < b);
            assert!(!result.loaded_trajectory().is_empty());
        }
    }
    assert!(detections > 0, "no test trajectory was detectable");
}

#[test]
fn every_variant_trains_and_detects() {
    let ds = micro_dataset();
    let cfg = LeadConfig::fast_test();
    let train = to_train_samples(&ds.train);
    let variants = [
        LeadOptions::no_poi(),
        LeadOptions::no_sel(),
        LeadOptions::no_hie(),
        LeadOptions::no_gro(),
        LeadOptions::no_for(),
        LeadOptions::no_bac(),
    ];
    for options in variants {
        let (lead, report) =
            Lead::fit(&train, &ds.city.poi_db, &cfg, options).expect("training failed");
        assert_eq!(lead.options(), options);
        assert!(!report.ae_curve.is_empty(), "{}", options.name());
        // Detector curves appear exactly where expected.
        match options.detector {
            lead::core::pipeline::DetectorChoice::Both => {
                assert!(!report.forward_kld_curve.is_empty());
                assert!(!report.backward_kld_curve.is_empty());
            }
            lead::core::pipeline::DetectorChoice::ForwardOnly => {
                assert!(!report.forward_kld_curve.is_empty());
                assert!(report.backward_kld_curve.is_empty());
            }
            lead::core::pipeline::DetectorChoice::BackwardOnly => {
                assert!(report.forward_kld_curve.is_empty());
                assert!(!report.backward_kld_curve.is_empty());
            }
            lead::core::pipeline::DetectorChoice::Mlp => {
                assert!(!report.mlp_curve.is_empty());
            }
        }
        let sample = &ds.test[0];
        let r = lead.detect(&sample.raw, &ds.city.poi_db);
        if let Some(r) = r {
            assert!(
                r.detected.start_sp < r.detected.end_sp,
                "{}",
                options.name()
            );
        }
    }
}

#[test]
fn training_is_deterministic_under_fixed_seed() {
    let ds = micro_dataset();
    let cfg = LeadConfig::fast_test();
    let train = to_train_samples(&ds.train);
    let (lead_a, report_a) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");
    let (lead_b, report_b) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");
    assert_eq!(report_a.ae_curve, report_b.ae_curve);
    assert_eq!(report_a.forward_kld_curve, report_b.forward_kld_curve);
    let s = &ds.test[0];
    let ra = lead_a.detect(&s.raw, &ds.city.poi_db);
    let rb = lead_b.detect(&s.raw, &ds.city.poi_db);
    match (ra, rb) {
        (Some(a), Some(b)) => {
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.probabilities, b.probabilities);
        }
        (None, None) => {}
        _ => panic!("detection determinism violated"),
    }
}

#[test]
fn baselines_train_and_detect() {
    let ds = micro_dataset();
    let cfg = LeadConfig::fast_test();
    let train = to_train_samples(&ds.train);

    let spr = SpR::fit(&train, &cfg);
    assert!(!spr.whitelist().is_empty());
    for kind in [RnnKind::Gru, RnnKind::Lstm] {
        let (model, curve) = SpRnn::fit(
            kind,
            &train,
            &ds.city.poi_db,
            &cfg,
            &SpRnnConfig::fast_test(),
        );
        assert!(!curve.is_empty());
        for s in ds.test.iter().take(3) {
            if let Some(d) = model.detect(&s.raw, &ds.city.poi_db) {
                assert!(d.loading < d.unloading);
            }
            if let Some(d) = spr.detect(&s.raw) {
                assert!(d.loading < d.unloading);
            }
        }
    }
}

#[test]
fn ground_truth_maps_for_most_synthetic_samples() {
    let ds = micro_dataset();
    let cfg = LeadConfig::paper();
    let all: Vec<_> = ds.train.iter().chain(&ds.val).chain(&ds.test).collect();
    let mapped = all.iter().filter(|s| test_case(s, &cfg).is_some()).count();
    assert!(
        mapped * 10 >= all.len() * 8,
        "only {mapped}/{} samples mapped their ground truth",
        all.len()
    );
}

#[test]
fn extracted_stays_match_planned_stays_for_most_samples() {
    let ds = micro_dataset();
    let cfg = LeadConfig::paper();
    let mut exact = 0;
    let mut total = 0;
    for s in ds.train.iter().chain(&ds.test) {
        let proc = ProcessedTrajectory::from_raw(&s.raw, &cfg);
        total += 1;
        if proc.num_stay_points() == s.planned_stays {
            exact += 1;
        }
        // Extraction may merge nearby planned stops (breaks chosen close to
        // the next site) but must not invent many: at most one extra, at most
        // five merged away on the busiest 14-stop days.
        let diff = proc.num_stay_points() as i64 - s.planned_stays as i64;
        assert!(
            (-5..=1).contains(&diff),
            "planned {} extracted {}",
            s.planned_stays,
            proc.num_stay_points()
        );
    }
    assert!(exact * 10 >= total * 6, "only {exact}/{total} exact");
}

#[test]
fn truth_projection_picks_loading_before_unloading() {
    let ds = micro_dataset();
    let cfg = LeadConfig::paper();
    for s in &ds.train {
        let proc = ProcessedTrajectory::from_raw(&s.raw, &cfg);
        if let Some((l, u)) = truth_stay_indices(&proc, &s.truth) {
            assert!(l < u);
            // The mapped stay points overlap the truth intervals in time.
            let pts = proc.cleaned.points();
            let sp = &proc.stay_points[l];
            assert!(pts[sp.start].t <= s.truth.load_end_s);
            assert!(pts[sp.end].t >= s.truth.load_start_s);
        }
    }
}

#[test]
fn streaming_matches_batch_detection() {
    use lead::core::streaming::StreamingDetector;
    let ds = micro_dataset();
    let cfg = LeadConfig::fast_test();
    let train = to_train_samples(&ds.train);
    let (model, _) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");

    let mut compared = 0;
    for s in ds.test.iter().chain(&ds.val) {
        let batch = model.detect(&s.raw, &ds.city.poi_db);
        let mut stream = StreamingDetector::new(&model, &ds.city.poi_db);
        for &p in s.raw.points() {
            stream.push(p);
        }
        let streamed = stream.finish();
        match (batch, streamed) {
            (Some(a), Some(b)) => {
                assert_eq!(a.detected, b.detected, "streaming/batch diverged");
                compared += 1;
            }
            (None, None) => {}
            (a, b) => panic!(
                "detectability diverged: batch={:?} streamed={:?}",
                a.map(|r| r.detected),
                b.map(|r| r.detected)
            ),
        }
    }
    assert!(compared > 0, "no comparable trajectory");
}

#[test]
fn persisted_model_streams_identically() {
    use lead::core::streaming::StreamingDetector;
    let ds = micro_dataset();
    let cfg = LeadConfig::fast_test();
    let train = to_train_samples(&ds.train);
    let (model, _) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");
    let mut buf = Vec::new();
    model.write_to(&mut buf).unwrap();
    let loaded = Lead::read_from(&mut buf.as_slice()).unwrap();

    let sample = &ds.test[0];
    let run = |m: &Lead| {
        let mut stream = StreamingDetector::new(m, &ds.city.poi_db);
        for &p in sample.raw.points() {
            stream.push(p);
        }
        stream.finish().map(|r| r.detected)
    };
    assert_eq!(run(&model), run(&loaded));
}
