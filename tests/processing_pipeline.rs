//! Integration tests of the processing component against the synthetic
//! generator: Definition 2 invariants on realistic data, noise-filter
//! effectiveness, and candidate bookkeeping.

use lead::core::config::LeadConfig;
use lead::core::processing::{filter_noise, ProcessedTrajectory};
use lead::geo::haversine_m;
use lead::synth::{generate_dataset, SynthConfig};

fn dataset() -> lead::synth::Dataset {
    let mut cfg = SynthConfig::tiny();
    cfg.num_trucks = 10;
    generate_dataset(&cfg)
}

#[test]
fn extracted_stay_points_satisfy_definition_2() {
    let ds = dataset();
    let cfg = LeadConfig::paper();
    for s in ds.train.iter().take(10) {
        let proc = ProcessedTrajectory::from_raw(&s.raw, &cfg);
        let pts = proc.cleaned.points();
        for sp in &proc.stay_points {
            // Duration ≥ T_min.
            let dur = pts[sp.end].t - pts[sp.start].t;
            assert!(dur >= cfg.t_min_s, "stay duration {dur}");
            // Every member within D_max of the anchor.
            for k in sp.start..=sp.end {
                let d = haversine_m(pts[sp.start].lat, pts[sp.start].lng, pts[k].lat, pts[k].lng);
                assert!(d <= cfg.d_max_m + 1e-6, "member at {d} m from anchor");
            }
            // Maximality: the next point (if any) is beyond D_max.
            if sp.end + 1 < pts.len() {
                let d = haversine_m(
                    pts[sp.start].lat,
                    pts[sp.start].lng,
                    pts[sp.end + 1].lat,
                    pts[sp.end + 1].lng,
                );
                assert!(d > cfg.d_max_m, "stay not maximal: next point at {d} m");
            }
        }
        // Chronological, non-overlapping.
        for w in proc.stay_points.windows(2) {
            assert!(w[0].end < w[1].start);
        }
    }
}

#[test]
fn candidates_cover_all_ordered_pairs() {
    let ds = dataset();
    let cfg = LeadConfig::paper();
    for s in ds.train.iter().take(10) {
        let proc = ProcessedTrajectory::from_raw(&s.raw, &cfg);
        let n = proc.num_stay_points();
        assert_eq!(proc.candidates.len(), n * n.saturating_sub(1) / 2);
        for c in &proc.candidates {
            let (a, b) = proc.candidate_point_range(*c);
            assert!(a < b);
            assert!(b < proc.cleaned.len());
        }
    }
}

#[test]
fn noise_filter_removes_injected_outliers() {
    let mut synth = SynthConfig::tiny();
    synth.num_trucks = 10;
    synth.outlier_prob = 0.02; // 5× the default rate
    let ds = lead::synth::generate_dataset(&synth);
    let cfg = LeadConfig::paper();
    let mut removed_total = 0;
    for s in &ds.train {
        let cleaned = filter_noise(&s.raw, cfg.v_max_kmh);
        removed_total += s.raw.len() - cleaned.len();
        // After filtering, no consecutive pair implies super-threshold speed.
        for w in cleaned.points().windows(2) {
            let v_kmh = w[0].speed_to_mps(&w[1]) * 3.6;
            assert!(v_kmh <= cfg.v_max_kmh + 1e-9, "residual speed {v_kmh}");
        }
    }
    assert!(removed_total > 0, "no outliers were injected/removed");
}

#[test]
fn stay_count_is_robust_to_gps_noise_level() {
    // Doubling GPS noise must not change stay counts drastically: the 500 m
    // threshold dwarfs realistic sensor noise.
    let mut a = SynthConfig::tiny();
    a.num_trucks = 10;
    let mut b = a.clone();
    b.gps_noise_std_m = 18.0;
    let cfg = LeadConfig::paper();
    let da = lead::synth::generate_dataset(&a);
    let db = lead::synth::generate_dataset(&b);
    for (sa, sb) in da.train.iter().zip(&db.train) {
        let na = ProcessedTrajectory::from_raw(&sa.raw, &cfg).num_stay_points();
        let nb = ProcessedTrajectory::from_raw(&sb.raw, &cfg).num_stay_points();
        assert!(
            (na as i64 - nb as i64).abs() <= 1,
            "stay counts diverged: {na} vs {nb}"
        );
    }
}

#[test]
fn micro_stops_do_not_become_stay_points() {
    // With micro-stops at maximum rate, stay counts must still track the
    // planned stop count (micro-stops dwell < T_min).
    let mut synth = SynthConfig::tiny();
    synth.num_trucks = 10;
    synth.micro_stop_prob = 1.0;
    let ds = lead::synth::generate_dataset(&synth);
    let cfg = LeadConfig::paper();
    for s in &ds.train {
        let proc = ProcessedTrajectory::from_raw(&s.raw, &cfg);
        assert!(
            proc.num_stay_points() <= s.planned_stays + 1,
            "micro-stops inflated stays: planned {} extracted {}",
            s.planned_stays,
            proc.num_stay_points()
        );
    }
}
