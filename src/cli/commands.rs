//! The CLI subcommands: `synth`, `train`, `detect`, `eval`.

use crate::cli::args::Args;
use crate::cli::data::{read_pois, read_split, write_pois, write_split, LoadedSplit};
use lead::core::config::LeadConfig;
use lead::core::label::truth_stay_indices;
use lead::core::pipeline::{Lead, LeadOptions};
use lead::core::processing::ProcessedTrajectory;
use lead::eval::{Bucket, BucketAccuracy};
use lead::synth::stats::DatasetStats;
use lead::synth::{generate_dataset, SynthConfig};
use std::io::Write;
use std::path::Path;

/// Runs the parsed command line; returns an error message on failure.
pub fn run(args: &Args) -> Result<(), String> {
    match args.subcommand() {
        "synth" => synth(args),
        "train" => train(args),
        "detect" => detect(args),
        "eval" => eval(args),
        "render" => render(args),
        "stats" => stats(args),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
lead — loaded-trajectory detection for hazardous chemicals transportation

USAGE:
  lead synth  --out DIR [--trucks N] [--days N] [--seed S]
      Generate a synthetic HCT dataset (CSV) into DIR.
  lead train  --data DIR --model FILE [--variant NAME] [--ae-epochs N] [--det-epochs N]
      Train LEAD (or a variant: full, no-poi, no-sel, no-hie, no-gro,
      no-for, no-bac) on DIR/train.csv (+ val) and save the model.
  lead detect --model FILE --data DIR --out FILE [--split test]
      Detect loaded trajectories of a split; write detections CSV.
  lead eval   --model FILE --data DIR [--split test]
      Report bucketed detection accuracy against the split's ground truth.
  lead render --model FILE --data DIR --out FILE.svg [--split test] [--seq N]
      Render trajectory N of a split with its detection as an SVG map.
  lead stats  --data DIR [--split test]
      Summarise a split: sample/truck counts, stay-point buckets, scorability.
"
    .to_string()
}

fn parse_variant(name: &str) -> Result<LeadOptions, String> {
    Ok(match name {
        "full" => LeadOptions::full(),
        "no-poi" => LeadOptions::no_poi(),
        "no-sel" => LeadOptions::no_sel(),
        "no-hie" => LeadOptions::no_hie(),
        "no-gro" => LeadOptions::no_gro(),
        "no-for" => LeadOptions::no_for(),
        "no-bac" => LeadOptions::no_bac(),
        other => return Err(format!("unknown variant `{other}`")),
    })
}

fn synth(args: &Args) -> Result<(), String> {
    let out = Path::new(args.required("out")?);
    let mut cfg = SynthConfig::paper_scaled();
    cfg.num_trucks = args.parsed_or("trucks", 60usize)?;
    cfg.days_per_truck = args.parsed_or("days", 2usize)?;
    cfg.seed = args.parsed_or("seed", cfg.seed)?;

    std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let ds = generate_dataset(&cfg);
    write_pois(&ds.city.poi_db, &out.join("pois.csv")).map_err(|e| e.to_string())?;
    write_split(&ds.train, out, "train").map_err(|e| e.to_string())?;
    write_split(&ds.val, out, "val").map_err(|e| e.to_string())?;
    write_split(&ds.test, out, "test").map_err(|e| e.to_string())?;
    println!(
        "wrote {} train / {} val / {} test trajectories and {} POIs to {}",
        ds.train.len(),
        ds.val.len(),
        ds.test.len(),
        ds.city.poi_db.len(),
        out.display()
    );
    println!("{}", DatasetStats::compute(&ds, &LeadConfig::paper()));
    Ok(())
}

fn train(args: &Args) -> Result<(), String> {
    let dir = Path::new(args.required("data")?);
    let model_path = args.required("model")?;
    let options = parse_variant(args.optional("variant").unwrap_or("full"))?;

    let mut cfg = LeadConfig::experiment();
    cfg.ae_max_epochs = args.parsed_or("ae-epochs", cfg.ae_max_epochs)?;
    cfg.detector_max_epochs = args.parsed_or("det-epochs", cfg.detector_max_epochs)?;

    let poi_db = read_pois(&dir.join("pois.csv"))?;
    let train = read_split(dir, "train")?;
    // The validation split is optional (its absence disables the validation
    // curves), but a *malformed* val file is a hard error.
    let val = if dir.join("val.csv").exists() {
        read_split(dir, "val")?
    } else {
        LoadedSplit {
            truck_ids: Vec::new(),
            samples: Vec::new(),
        }
    };
    println!(
        "training {} on {} trajectories ({} validation)…",
        options.name(),
        train.samples.len(),
        val.samples.len()
    );
    let (model, report) = Lead::fit_with_val(&train.samples, &val.samples, &poi_db, &cfg, options)
        .map_err(|e| e.to_string())?;
    println!(
        "autoencoder MSE {:.4} → {:.4} over {} epochs; skipped {} unusable samples",
        report.ae_curve.first().copied().unwrap_or(f32::NAN),
        report.ae_curve.last().copied().unwrap_or(f32::NAN),
        report.ae_curve.len(),
        report.skipped_samples,
    );
    model.save(model_path).map_err(|e| e.to_string())?;
    println!("model saved to {model_path}");
    Ok(())
}

fn detect(args: &Args) -> Result<(), String> {
    let dir = Path::new(args.required("data")?);
    let model_path = args.required("model")?;
    let out_path = args.required("out")?;
    let split = args.optional("split").unwrap_or("test");

    let model = Lead::load(model_path).map_err(|e| e.to_string())?;
    let poi_db = read_pois(&dir.join("pois.csv"))?;
    let data = read_split(dir, split)?;

    let mut w = std::io::BufWriter::new(
        std::fs::File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?,
    );
    writeln!(
        w,
        "seq,truck_id,stay_points,loading_sp,unloading_sp,loaded_start_s,loaded_end_s"
    )
    .map_err(|e| e.to_string())?;
    let mut detected = 0;
    for (seq, (truck_id, sample)) in data.truck_ids.iter().zip(&data.samples).enumerate() {
        match model.detect(&sample.raw, &poi_db) {
            Some(result) => {
                let (a, b) = result.loaded_interval_s();
                writeln!(
                    w,
                    "{seq},{truck_id},{},{},{},{a},{b}",
                    result.processed.num_stay_points(),
                    result.detected.start_sp,
                    result.detected.end_sp,
                )
                .map_err(|e| e.to_string())?;
                detected += 1;
            }
            None => {
                writeln!(w, "{seq},{truck_id},<2,,,,").map_err(|e| e.to_string())?;
            }
        }
    }
    println!(
        "{detected}/{} trajectories detected; written to {out_path}",
        data.samples.len()
    );
    Ok(())
}

fn eval(args: &Args) -> Result<(), String> {
    let dir = Path::new(args.required("data")?);
    let model_path = args.required("model")?;
    let split = args.optional("split").unwrap_or("test");

    let model = Lead::load(model_path).map_err(|e| e.to_string())?;
    let poi_db = read_pois(&dir.join("pois.csv"))?;
    let data = read_split(dir, split)?;

    let mut acc = BucketAccuracy::new();
    let mut excluded = 0;
    for sample in &data.samples {
        let proc = ProcessedTrajectory::from_raw(&sample.raw, model.config());
        let Some((l, u)) = truth_stay_indices(&proc, &sample.truth) else {
            excluded += 1;
            continue;
        };
        let hit = model
            .detect(&sample.raw, &poi_db)
            .map(|r| r.detected.start_sp == l && r.detected.end_sp == u)
            .unwrap_or(false);
        acc.record(proc.num_stay_points(), hit);
    }
    println!(
        "accuracy on `{split}` ({} samples, {excluded} excluded):",
        acc.total()
    );
    for b in Bucket::ALL {
        match acc.acc(b) {
            Some(a) => println!("  {:>6}: {a:5.1}%  ({} samples)", b.label(), acc.count(b)),
            None => println!("  {:>6}:     -  (0 samples)", b.label()),
        }
    }
    match acc.overall() {
        Some(a) => println!("  {:>6}: {a:5.1}%", "3~14"),
        None => println!("  no scorable samples"),
    }
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    use lead::synth::stats::SplitStats;
    let dir = Path::new(args.required("data")?);
    let split = args.optional("split").unwrap_or("test");
    let data = read_split(dir, split)?;
    // SplitStats works on synth samples; adapt the loaded split.
    let samples: Vec<lead::synth::Sample> = data
        .truck_ids
        .iter()
        .zip(&data.samples)
        .map(|(&truck_id, s)| lead::synth::Sample {
            truck_id,
            day: 0,
            raw: s.raw.clone(),
            truth: s.truth,
            planned_stays: 0,
        })
        .collect();
    let stats = SplitStats::compute(&samples, &LeadConfig::paper());
    println!("`{split}`: {stats}");
    Ok(())
}

fn render(args: &Args) -> Result<(), String> {
    let dir = Path::new(args.required("data")?);
    let model_path = args.required("model")?;
    let out_path = args.required("out")?;
    let split = args.optional("split").unwrap_or("test");
    let seq: usize = args.parsed_or("seq", 0)?;

    let model = Lead::load(model_path).map_err(|e| e.to_string())?;
    let poi_db = read_pois(&dir.join("pois.csv"))?;
    let data = read_split(dir, split)?;
    let sample = data.samples.get(seq).ok_or_else(|| {
        format!(
            "--seq {seq} out of range (split has {})",
            data.samples.len()
        )
    })?;
    let result = model
        .detect(&sample.raw, &poi_db)
        .ok_or("trajectory has fewer than two stay points")?;
    let svg = lead::eval::svg::render_detection(&result.processed, result.detected, 900.0);
    std::fs::write(out_path, &svg).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "rendered trajectory {seq} of `{split}` (detected ⟨sp_{} --→ sp_{}⟩) to {out_path}",
        result.detected.start_sp, result.detected.end_sp
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn unknown_subcommand_and_variant_are_rejected() {
        assert!(run(&args("frobnicate")).is_err());
        assert!(parse_variant("no-such-variant").is_err());
        assert_eq!(parse_variant("no-gro").unwrap().name(), "LEAD-NoGro");
        assert_eq!(parse_variant("full").unwrap().name(), "LEAD");
    }

    #[test]
    fn synth_writes_the_expected_files() {
        let dir = std::env::temp_dir().join(format!("lead-cli-synth-{}", std::process::id()));
        let cmd = format!("synth --out {} --trucks 10 --days 1", dir.display());
        run(&args(&cmd)).unwrap();
        for f in [
            "pois.csv",
            "train.csv",
            "val.csv",
            "test.csv",
            "truth_train.csv",
            "truth_val.csv",
            "truth_test.csv",
        ] {
            assert!(dir.join(f).exists(), "missing {f}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_runs_on_a_synth_directory() {
        let dir = std::env::temp_dir().join(format!("lead-cli-stats-{}", std::process::id()));
        run(&args(&format!(
            "synth --out {} --trucks 10 --days 1",
            dir.display()
        )))
        .unwrap();
        run(&args(&format!(
            "stats --data {} --split train",
            dir.display()
        )))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_is_available() {
        assert!(run(&args("help")).is_ok());
        assert!(usage().contains("lead synth"));
    }
}
