//! A minimal `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    subcommand: String,
    options: HashMap<String, String>,
}

impl Args {
    /// Parses `argv[1..]`: the first token is the subcommand, the rest must
    /// be `--key value` pairs.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut it = argv.into_iter();
        let subcommand = it.next().ok_or("missing subcommand")?;
        let mut options = HashMap::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got `{key}`"))?
                .to_string();
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            if options.insert(key.clone(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(Args {
            subcommand,
            options,
        })
    }

    /// The subcommand name.
    pub fn subcommand(&self) -> &str {
        &self.subcommand
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{key} `{v}`: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(argv("train --data d --model m.lead")).unwrap();
        assert_eq!(a.subcommand(), "train");
        assert_eq!(a.required("data").unwrap(), "d");
        assert_eq!(a.optional("model"), Some("m.lead"));
        assert_eq!(a.optional("nope"), None);
    }

    #[test]
    fn parsed_or_defaults_and_parses() {
        let a = Args::parse(argv("synth --trucks 99")).unwrap();
        assert_eq!(a.parsed_or("trucks", 10usize).unwrap(), 99);
        assert_eq!(a.parsed_or("days", 2usize).unwrap(), 2);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Args::parse(argv("")).is_err());
        assert!(Args::parse(argv("x stray")).is_err());
        assert!(Args::parse(argv("x --a")).is_err());
        assert!(Args::parse(argv("x --a 1 --a 2")).is_err());
    }
}
