//! Dataset-directory layout used by the CLI.
//!
//! ```text
//! <dir>/
//!   pois.csv          lat,lng,category          (29-category taxonomy names)
//!   train.csv         truck_id,timestamp_s,lat,lng
//!   val.csv           "
//!   test.csv          "
//!   truth_train.csv   seq,truck_id,load_start_s,load_end_s,unload_start_s,unload_end_s
//!   truth_val.csv     "
//!   truth_test.csv    "
//! ```
//!
//! `seq` is the 0-based position of the trajectory within its split file, so
//! labels stay attached without requiring unique (truck, day) keys.

use lead::core::label::TruthLabel;
use lead::core::pipeline::TrainSample;
use lead::core::poi::{Poi, PoiCategory, PoiDatabase};
use lead::geo::csv::{read_trajectories, write_trajectories};
use lead::geo::Trajectory;
use lead::synth::Sample;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// One split loaded from disk.
#[derive(Debug, Clone)]
pub struct LoadedSplit {
    /// Truck ids, aligned with `samples`.
    pub truck_ids: Vec<u32>,
    /// Raw trajectory + ground truth per sample.
    pub samples: Vec<TrainSample>,
}

/// Writes the POI database.
pub fn write_pois(db: &PoiDatabase, path: &Path) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "lat,lng,category")?;
    for poi in db.iter() {
        writeln!(w, "{:.7},{:.7},{}", poi.lat, poi.lng, poi.category.name())?;
    }
    Ok(())
}

/// Reads a POI database written by [`write_pois`].
pub fn read_pois(path: &Path) -> Result<PoiDatabase, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut pois = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        if idx == 0 {
            if line.trim() != "lat,lng,category" {
                return Err(format!("{}: bad header", path.display()));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.trim().split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "{}: line {}: expected 3 fields",
                path.display(),
                idx + 1
            ));
        }
        let lat: f64 = parts[0]
            .parse()
            .map_err(|e| format!("line {}: bad lat: {e}", idx + 1))?;
        let lng: f64 = parts[1]
            .parse()
            .map_err(|e| format!("line {}: bad lng: {e}", idx + 1))?;
        let category = PoiCategory::from_name(parts[2])
            .ok_or_else(|| format!("line {}: unknown category `{}`", idx + 1, parts[2]))?;
        pois.push(Poi { lat, lng, category });
    }
    Ok(PoiDatabase::new(pois))
}

/// Writes one split (trajectories + truth) from synthetic samples.
pub fn write_split(samples: &[Sample], dir: &Path, split: &str) -> std::io::Result<()> {
    let items: Vec<(u32, &Trajectory)> = samples.iter().map(|s| (s.truck_id, &s.raw)).collect();
    let mut w = BufWriter::new(File::create(dir.join(format!("{split}.csv")))?);
    write_trajectories(&items, &mut w)?;

    let mut w = BufWriter::new(File::create(dir.join(format!("truth_{split}.csv")))?);
    writeln!(
        w,
        "seq,truck_id,load_start_s,load_end_s,unload_start_s,unload_end_s"
    )?;
    for (seq, s) in samples.iter().enumerate() {
        writeln!(
            w,
            "{seq},{},{},{},{},{}",
            s.truck_id,
            s.truth.load_start_s,
            s.truth.load_end_s,
            s.truth.unload_start_s,
            s.truth.unload_end_s
        )?;
    }
    Ok(())
}

/// Reads one split back.
pub fn read_split(dir: &Path, split: &str) -> Result<LoadedSplit, String> {
    let tr_path = dir.join(format!("{split}.csv"));
    let file = File::open(&tr_path).map_err(|e| format!("{}: {e}", tr_path.display()))?;
    let trajectories = read_trajectories(&mut BufReader::new(file))
        .map_err(|e| format!("{}: {e}", tr_path.display()))?;

    let truth_path = dir.join(format!("truth_{split}.csv"));
    let file = File::open(&truth_path).map_err(|e| format!("{}: {e}", truth_path.display()))?;
    let mut truths: Vec<(usize, u32, TruthLabel)> = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", truth_path.display()))?;
        if idx == 0 {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.trim().split(',').collect();
        if parts.len() != 6 {
            return Err(format!(
                "{}: line {}: expected 6 fields",
                truth_path.display(),
                idx + 1
            ));
        }
        let nums: Result<Vec<i64>, _> = parts.iter().map(|p| p.parse::<i64>()).collect();
        let nums = nums.map_err(|e| format!("line {}: {e}", idx + 1))?;
        truths.push((
            nums[0] as usize,
            nums[1] as u32,
            TruthLabel {
                load_start_s: nums[2],
                load_end_s: nums[3],
                unload_start_s: nums[4],
                unload_end_s: nums[5],
            },
        ));
    }
    if truths.len() != trajectories.len() {
        return Err(format!(
            "{split}: {} trajectories but {} truth rows",
            trajectories.len(),
            truths.len()
        ));
    }
    let mut truck_ids = Vec::with_capacity(trajectories.len());
    let mut samples = Vec::with_capacity(trajectories.len());
    for ((seq, truck_id, truth), (tid, raw)) in truths.into_iter().zip(trajectories) {
        if truck_id != tid {
            return Err(format!(
                "{split}: truth row {seq} names truck {truck_id} but trajectory {seq} is truck {tid}"
            ));
        }
        truth.validate();
        truck_ids.push(tid);
        samples.push(TrainSample { raw, truth });
    }
    Ok(LoadedSplit { truck_ids, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead::synth::{generate_dataset, SynthConfig};

    #[test]
    fn split_roundtrip_through_directory() {
        let mut cfg = SynthConfig::tiny();
        cfg.num_trucks = 10;
        cfg.days_per_truck = 1;
        let ds = generate_dataset(&cfg);
        let dir = std::env::temp_dir().join(format!("lead-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        write_pois(&ds.city.poi_db, &dir.join("pois.csv")).unwrap();
        write_split(&ds.train, &dir, "train").unwrap();

        let db = read_pois(&dir.join("pois.csv")).unwrap();
        assert_eq!(db.len(), ds.city.poi_db.len());

        let split = read_split(&dir, "train").unwrap();
        assert_eq!(split.samples.len(), ds.train.len());
        for (loaded, orig) in split.samples.iter().zip(&ds.train) {
            assert_eq!(loaded.truth, orig.truth);
            assert_eq!(loaded.raw.len(), orig.raw.len());
            // Coordinates survive to ~1 cm.
            let a = loaded.raw.points()[0];
            let b = orig.raw.points()[0];
            assert!(lead::geo::haversine_m(a.lat, a.lng, b.lat, b.lng) < 0.05);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
