//! # LEAD — Detecting Loaded Trajectories for Hazardous Chemicals Transportation
//!
//! Umbrella crate re-exporting the whole workspace so downstream users can
//! depend on a single crate. A Rust reproduction of:
//!
//! > Shuncheng Liu, Zhi Xu, Huimin Ren, Tianfu He, Boyang Han, Jie Bao,
//! > Kai Zheng, Yu Zheng. *Detecting Loaded Trajectories for Hazardous
//! > Chemicals Transportation.* ICDE 2022.
//!
//! See the repository `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-versus-measured results.
//!
//! The most common entry points are:
//! - [`core::pipeline::Lead`] — the trained end-to-end detector;
//! - [`synth::dataset`] — the synthetic HCT dataset substituting the paper's
//!   proprietary Nantong data;
//! - [`baselines`] — SP-R / SP-GRU / SP-LSTM comparison methods;
//! - [`eval`] — the experiment harness regenerating every table and figure;
//! - [`obs`] — deterministic observability probes for the hot paths.

pub use lead_baselines as baselines;
pub use lead_core as core;
pub use lead_data as data;
pub use lead_eval as eval;
pub use lead_geo as geo;
pub use lead_nn as nn;
pub use lead_obs as obs;
pub use lead_synth as synth;
