//! `data-convert` — CSV ↔ binary trajectory container conversion and
//! verification.
//!
//! Subcommands:
//!
//! ```text
//! data-convert sample-csv OUT.csv
//!     Write a small deterministic sample CSV (grid-aligned coordinates, so
//!     a csv2bin → bin2csv round trip is byte-exact).
//! data-convert csv2bin IN.csv OUT.leadbin [--shard-size N]
//!     Convert a trajectory CSV to the binary container format; with
//!     --shard-size, write OUT-00000.leadbin, OUT-00001.leadbin, … instead.
//! data-convert bin2csv OUT.csv IN.leadbin [IN2.leadbin ...]
//!     Convert binary container file(s) back to one CSV.
//! data-convert verify FILE [FILE ...]
//!     Fully read each container, checksums and all; non-zero exit on any
//!     corruption.
//! data-convert corrupt FILE OFFSET
//!     Flip (XOR 0xFF) the byte at OFFSET — a corruption-injection helper
//!     for self-tests.
//! ```

use lead::data::records::{TrajectoryReader, TrajectoryWriter};
use lead::geo::csv::{write_trajectories, CsvReader};
use lead::geo::Trajectory;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn usage() -> String {
    "\
data-convert — CSV <-> binary trajectory container conversion

USAGE:
  data-convert sample-csv OUT.csv
  data-convert csv2bin IN.csv OUT.leadbin [--shard-size N]
  data-convert bin2csv OUT.csv IN.leadbin [IN2.leadbin ...]
  data-convert verify FILE [FILE ...]
  data-convert corrupt FILE OFFSET
"
    .to_string()
}

fn run(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("sample-csv") => sample_csv(&argv[1..]),
        Some("csv2bin") => csv2bin(&argv[1..]),
        Some("bin2csv") => bin2csv(&argv[1..]),
        Some("verify") => verify(&argv[1..]),
        Some("corrupt") => corrupt(&argv[1..]),
        Some("help" | "--help" | "-h") => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
        None => Err(format!("missing subcommand\n\n{}", usage())),
    }
}

/// Grid-aligned coordinate: exactly representable on the 1e-7° fixed-point
/// grid, so CSV `%.7` text, the parsed `f64`, and the binary fixed-point
/// encoding all round-trip byte-exactly.
fn grid(units_1e7: i64) -> f64 {
    units_1e7 as f64 / 1e7
}

fn sample_csv(args: &[String]) -> Result<(), String> {
    let [out] = args else {
        return Err("usage: data-convert sample-csv OUT.csv".to_string());
    };
    let mut trajectories: Vec<(u32, Trajectory)> = Vec::new();
    for truck in 0..5u32 {
        let base_lat = 319_000_000 + i64::from(truck) * 400_000;
        let base_lng = 1_209_000_000 + i64::from(truck) * 700_000;
        let points = (0..200)
            .map(|i| {
                lead::geo::GpsPoint::new(
                    grid(base_lat + i * 1_500),
                    grid(base_lng + i * 2_100),
                    i64::from(truck) * 100_000 + i * 30,
                )
            })
            .collect();
        trajectories.push((truck, Trajectory::new(points)));
    }
    let refs: Vec<(u32, &Trajectory)> = trajectories.iter().map(|(id, t)| (*id, t)).collect();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_trajectories(&refs, &mut w).map_err(|e| format!("write {out}: {e}"))?;
    w.flush().map_err(|e| format!("flush {out}: {e}"))?;
    println!("wrote {} trajectories to {out}", refs.len());
    Ok(())
}

fn read_csv(path: &str) -> Result<Vec<(u32, Trajectory)>, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = CsvReader::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for item in reader {
        out.push(item.map_err(|e| format!("{path}: {e}"))?);
    }
    Ok(out)
}

fn write_bin(path: &Path, items: &[(u32, Trajectory)]) -> Result<(), String> {
    let display = path.display();
    let file = File::create(path).map_err(|e| format!("create {display}: {e}"))?;
    let mut w =
        TrajectoryWriter::new(BufWriter::new(file)).map_err(|e| format!("{display}: {e}"))?;
    for (id, tr) in items {
        w.write(*id, tr).map_err(|e| format!("{display}: {e}"))?;
    }
    w.finish().map_err(|e| format!("{display}: {e}"))?;
    Ok(())
}

fn csv2bin(args: &[String]) -> Result<(), String> {
    let (input, output, shard_size) = match args {
        [input, output] => (input, output, None),
        [input, output, flag, n] if flag == "--shard-size" => {
            let n: usize = n
                .parse()
                .map_err(|e| format!("bad --shard-size `{n}`: {e}"))?;
            (input, output, Some(n.max(1)))
        }
        _ => {
            return Err(
                "usage: data-convert csv2bin IN.csv OUT.leadbin [--shard-size N]".to_string(),
            )
        }
    };
    let items = read_csv(input)?;
    match shard_size {
        None => {
            write_bin(Path::new(output), &items)?;
            println!("wrote {} trajectories to {output}", items.len());
        }
        Some(size) => {
            let mut shards = 0usize;
            for (i, chunk) in items.chunks(size).enumerate() {
                let path = PathBuf::from(format!("{output}-{i:05}.leadbin"));
                write_bin(&path, chunk)?;
                shards += 1;
            }
            if shards == 0 {
                write_bin(&PathBuf::from(format!("{output}-00000.leadbin")), &[])?;
                shards = 1;
            }
            println!(
                "wrote {} trajectories to {shards} shard(s) at {output}-*.leadbin",
                items.len()
            );
        }
    }
    Ok(())
}

fn bin2csv(args: &[String]) -> Result<(), String> {
    let [out, inputs @ ..] = args else {
        return Err("usage: data-convert bin2csv OUT.csv IN.leadbin [IN2.leadbin ...]".to_string());
    };
    if inputs.is_empty() {
        return Err("usage: data-convert bin2csv OUT.csv IN.leadbin [IN2.leadbin ...]".to_string());
    }
    let mut items: Vec<(u32, Trajectory)> = Vec::new();
    for input in inputs {
        let file = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
        let mut r =
            TrajectoryReader::new(BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
        loop {
            match r.next_record() {
                Ok(Some(item)) => items.push(item),
                Ok(None) => break,
                Err(e) => return Err(format!("{input}: {e}")),
            }
        }
    }
    let refs: Vec<(u32, &Trajectory)> = items.iter().map(|(id, t)| (*id, t)).collect();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_trajectories(&refs, &mut w).map_err(|e| format!("write {out}: {e}"))?;
    w.flush().map_err(|e| format!("flush {out}: {e}"))?;
    println!("wrote {} trajectories to {out}", refs.len());
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("usage: data-convert verify FILE [FILE ...]".to_string());
    }
    for input in args {
        let file = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
        let mut r =
            TrajectoryReader::new(BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
        let declared = r.count();
        let mut records = 0u64;
        let mut points = 0u64;
        loop {
            match r.next_record() {
                Ok(Some((_, tr))) => {
                    records += 1;
                    points += tr.points().len() as u64;
                }
                Ok(None) => break,
                Err(e) => return Err(format!("{input}: {e}")),
            }
        }
        println!("{input}: OK ({records}/{declared} records, {points} points)");
    }
    Ok(())
}

fn corrupt(args: &[String]) -> Result<(), String> {
    let [path, offset] = args else {
        return Err("usage: data-convert corrupt FILE OFFSET".to_string());
    };
    let offset: u64 = offset
        .parse()
        .map_err(|e| format!("bad offset `{offset}`: {e}"))?;
    let mut file = File::options()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| format!("open {path}: {e}"))?;
    let len = file
        .metadata()
        .map_err(|e| format!("stat {path}: {e}"))?
        .len();
    if offset >= len {
        return Err(format!("offset {offset} past end of {path} ({len} bytes)"));
    }
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| format!("seek {path}: {e}"))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)
        .map_err(|e| format!("read {path}: {e}"))?;
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| format!("seek {path}: {e}"))?;
    file.write_all(&byte)
        .map_err(|e| format!("write {path}: {e}"))?;
    println!("flipped byte at offset {offset} of {path}");
    Ok(())
}
