//! The `lead` command-line tool: generate synthetic HCT data, train LEAD (or
//! any ablation variant), detect loaded trajectories, and evaluate accuracy —
//! all over plain CSV files, so real GPS feeds plug in without code.

mod cli {
    pub mod args;
    pub mod commands;
    pub mod data;
}

use cli::args::Args;
use cli::commands::{run, usage};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", usage());
        std::process::exit(2);
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
