//! Observability: attach a recording probe to training and batch detection,
//! then render the collected metrics as a table and as JSONL.
//!
//! The probe is write-only — the trained model and every detection are
//! bit-identical with or without it (a parity test in `crates/core/tests`
//! pins this down).
//!
//! Run with: `cargo run --release --example observability`

use lead::core::config::LeadConfig;
use lead::core::pipeline::{DetectOptions, Lead, LeadOptions};
use lead::eval::runner::to_train_samples;
use lead::obs::{emit, Recorder};
use lead::synth::{generate_dataset, SynthConfig};

fn main() {
    // 1. A small synthetic world (substitute for the Nantong data).
    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = 20;
    synth.days_per_truck = 1;
    let dataset = generate_dataset(&synth);

    let mut config = LeadConfig::experiment();
    config.ae_max_epochs = 4;
    config.detector_max_epochs = 6;

    // 2. Offline stage with a recorder attached: every pipeline stage emits
    //    spans (fit.features, fit.autoencoder, …), per-epoch losses, gradient
    //    norms, and processing counters into the recorder.
    let recorder = Recorder::new();
    let train = to_train_samples(&dataset.train);
    println!("training LEAD with a recording probe…");
    let (lead, _report) = Lead::fit_opts(
        &train,
        &[],
        &dataset.city.poi_db,
        &config,
        LeadOptions::full(),
        &recorder,
    )
    .expect("training failed");

    // 3. Online stage: batch detection through the same probe records
    //    per-stage latency and batch throughput.
    let raws: Vec<_> = dataset.test.iter().map(|s| s.raw.clone()).collect();
    let opts = DetectOptions::new().with_probe(&recorder);
    let results = lead.detect_batch_opts(&raws, &dataset.city.poi_db, &opts);
    let detected = results.iter().flatten().count();
    println!("detected {detected}/{} test trajectories\n", raws.len());

    // 4. Render everything the probe saw.
    let snapshot = recorder.snapshot();
    println!("{}", emit::table(&snapshot));

    println!("machine-readable (JSONL), first lines:");
    for line in emit::jsonl(&snapshot).lines().take(5) {
        println!("  {line}");
    }
}
