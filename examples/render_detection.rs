//! Renders a detection as an SVG map (the visual counterpart of the paper's
//! Figure 1): raw trajectory in grey, detected loaded trajectory in red,
//! stay points annotated.
//!
//! Run with: `cargo run --release --example render_detection`
//! Output: `detection.svg` in the working directory.

use lead::core::config::LeadConfig;
use lead::core::pipeline::{Lead, LeadOptions};
use lead::eval::runner::{test_case, to_train_samples};
use lead::eval::svg::render_detection;
use lead::synth::{generate_dataset, SynthConfig};

fn main() {
    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = 40;
    synth.days_per_truck = 2;
    let dataset = generate_dataset(&synth);

    let mut config = LeadConfig::experiment();
    config.ae_max_epochs = 6;
    config.detector_max_epochs = 12;
    println!("training LEAD…");
    let train = to_train_samples(&dataset.train);
    let (lead, _) = Lead::fit(&train, &dataset.city.poi_db, &config, LeadOptions::full())
        .expect("training failed");

    // Pick the first detectable test sample and render it.
    for sample in &dataset.test {
        let Some((_, truth)) = test_case(sample, &config) else {
            continue;
        };
        let Some(result) = lead.detect(&sample.raw, &dataset.city.poi_db) else {
            continue;
        };
        let svg = render_detection(&result.processed, result.detected, 900.0);
        std::fs::write("detection.svg", &svg).expect("write detection.svg");
        println!(
            "truck {} day {}: detected ⟨sp_{} --→ sp_{}⟩ (truth ⟨sp_{} --→ sp_{}⟩, {}) → detection.svg",
            sample.truck_id,
            sample.day,
            result.detected.start_sp,
            result.detected.end_sp,
            truth.start_sp,
            truth.end_sp,
            if result.detected == truth { "HIT" } else { "MISS" },
        );
        return;
    }
    eprintln!("no detectable test sample found");
}
