//! Automatic waybill generation — the paper's motivating application:
//! drivers fill waybills manually (default times, misspelled addresses), so
//! the government gets low-quality loading/unloading records. With the loaded
//! trajectory detected, a high-quality waybill can be generated automatically
//! (Section I: "high-quality waybill can be automatically generated from the
//! loaded trajectory").
//!
//! Run with: `cargo run --release --example waybill_generation`

use lead::core::config::LeadConfig;
use lead::core::pipeline::{DetectionResult, Lead, LeadOptions};
use lead::core::poi::PoiDatabase;
use lead::eval::runner::to_train_samples;
use lead::synth::{generate_dataset, SynthConfig};

/// The automatically generated waybill for one HCT process.
#[derive(Debug)]
struct Waybill {
    truck_id: u32,
    loading_time: String,
    loading_address: String,
    unloading_time: String,
    unloading_address: String,
    distance_km: f64,
}

fn hhmm(t: i64) -> String {
    format!("{:02}:{:02}", (t / 3600) % 24, (t % 3600) / 60)
}

/// Resolves a detection into a waybill: times from the detected stay points,
/// addresses from the nearest POI.
fn generate_waybill(truck_id: u32, result: &DetectionResult, poi_db: &PoiDatabase) -> Waybill {
    let (start_s, end_s) = result.loaded_interval_s();
    let address_of = |sp_idx: usize| -> String {
        let sp = &result.processed.stay_points[sp_idx];
        let (lat, lng) = result
            .processed
            .cleaned
            .slice(sp.start, sp.end)
            .centroid()
            .expect("stay points are non-empty");
        match poi_db.nearest_within(lat, lng, 300.0) {
            Some((poi, d)) => format!("{:?} @({lat:.4}, {lng:.4}) [{d:.0} m]", poi.category),
            None => format!("unknown site @({lat:.4}, {lng:.4})"),
        }
    };
    Waybill {
        truck_id,
        loading_time: hhmm(start_s),
        loading_address: address_of(result.detected.start_sp),
        unloading_time: hhmm(end_s),
        unloading_address: address_of(result.detected.end_sp),
        distance_km: result.loaded_trajectory().length_m() / 1_000.0,
    }
}

fn main() {
    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = 40;
    synth.days_per_truck = 2;
    let dataset = generate_dataset(&synth);

    let mut config = LeadConfig::experiment();
    config.ae_max_epochs = 6;
    config.detector_max_epochs = 12;
    println!("training LEAD…");
    let train = to_train_samples(&dataset.train);
    let (lead, _) = Lead::fit(&train, &dataset.city.poi_db, &config, LeadOptions::full())
        .expect("training failed");

    println!("\nauto-generated waybills for the unseen test fleet:\n");
    for sample in dataset.test.iter().take(6) {
        let Some(result) = lead.detect(&sample.raw, &dataset.city.poi_db) else {
            continue;
        };
        let wb = generate_waybill(sample.truck_id, &result, &dataset.city.poi_db);
        println!("Waybill — truck {}", wb.truck_id);
        println!("  loading   {} at {}", wb.loading_time, wb.loading_address);
        println!(
            "  unloading {} at {}",
            wb.unloading_time, wb.unloading_address
        );
        println!("  loaded distance: {:.1} km", wb.distance_km);
        // Compare with what the driver would have filed: the paper's example
        // of low-quality manual waybills (default 8:00/17:00 times).
        println!(
            "  (manual waybill would have said: loading 08:00, unloading 17:00, address \"Nantong\")\n"
        );
    }
}
