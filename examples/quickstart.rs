//! Quickstart: generate a synthetic HCT world, train LEAD, and detect the
//! loaded trajectory of an unseen truck's day.
//!
//! Run with: `cargo run --release --example quickstart`

use lead::core::config::LeadConfig;
use lead::core::pipeline::{Lead, LeadOptions};
use lead::core::processing::ProcessedTrajectory;
use lead::eval::runner::{test_case, to_train_samples};
use lead::synth::{generate_dataset, SynthConfig};

fn main() {
    // 1. A small synthetic city + fleet (substitute for the Nantong data).
    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = 40;
    synth.days_per_truck = 2;
    let dataset = generate_dataset(&synth);
    println!(
        "world: {} POIs, {} loading sites; dataset: {} train / {} test days",
        dataset.city.poi_db.len(),
        dataset.city.loading_sites.len(),
        dataset.train.len(),
        dataset.test.len()
    );

    // 2. Inspect the processing component on one raw trajectory (Figure 3).
    let mut config = LeadConfig::experiment();
    config.ae_max_epochs = 6;
    config.detector_max_epochs = 12;
    let sample = &dataset.test[0];
    let proc = ProcessedTrajectory::from_raw(&sample.raw, &config);
    println!(
        "\nraw trajectory: {} GPS points → {} after noise filtering",
        sample.raw.len(),
        proc.cleaned.len()
    );
    println!(
        "stay points: {} → candidate trajectories: {}",
        proc.num_stay_points(),
        proc.candidates.len()
    );

    // 3. Offline stage: train LEAD on the training split.
    println!("\ntraining LEAD (offline stage)…");
    let train = to_train_samples(&dataset.train);
    let (lead, report) = Lead::fit(&train, &dataset.city.poi_db, &config, LeadOptions::full())
        .expect("training failed");
    // A curve can legitimately be empty (e.g. an ablation without that
    // stage), so endpoints are printed as "n/a" rather than unwrapped.
    let endpoint = |v: Option<&f32>| v.map_or("n/a".to_string(), |x| format!("{x:.4}"));
    println!(
        "autoencoder MSE: {} → {} over {} epochs",
        endpoint(report.ae_curve.first()),
        endpoint(report.ae_curve.last()),
        report.ae_curve.len()
    );
    println!(
        "forward detector KLD: {} → {}; backward: {} → {}",
        endpoint(report.forward_kld_curve.first()),
        endpoint(report.forward_kld_curve.last()),
        endpoint(report.backward_kld_curve.first()),
        endpoint(report.backward_kld_curve.last()),
    );

    // 4. Online stage: detect loaded trajectories of unseen trucks.
    println!("\ndetecting on the test split (unseen trucks):");
    let mut hits = 0;
    let mut total = 0;
    for sample in &dataset.test {
        let Some((_proc, truth)) = test_case(sample, &config) else {
            continue;
        };
        let result = lead
            .detect(&sample.raw, &dataset.city.poi_db)
            .expect("≥2 stay points because the truth mapped");
        let (start_s, end_s) = result.loaded_interval_s();
        let hit = result.detected == truth;
        hits += hit as usize;
        total += 1;
        println!(
            "truck {:>3} day {}: loaded trajectory ⟨sp_{} --→ sp_{}⟩ ({}:{:02} – {}:{:02}) {}",
            sample.truck_id,
            sample.day,
            result.detected.start_sp,
            result.detected.end_sp,
            start_s / 3600,
            (start_s % 3600) / 60,
            end_s / 3600,
            (end_s % 3600) / 60,
            if hit { "✓" } else { "✗" }
        );
    }
    println!("\naccuracy on unseen trucks: {hits}/{total}");
}
