//! Illegal-facility discovery — the paper's first motivating application:
//! "Governments can utilize these information to promptly identify illegal
//! loading and unloading locations" (and the cited ICFinder work mines truck
//! trajectories for unregistered hazardous-chemical facilities).
//!
//! This example detects loaded trajectories across the whole fleet, clusters
//! the detected loading/unloading endpoints, and reports clusters that do
//! *not* match any registered facility — candidates for enforcement visits.
//!
//! Run with: `cargo run --release --example whitelist_mining`

use lead::core::config::LeadConfig;
use lead::core::pipeline::{Lead, LeadOptions};
use lead::eval::runner::to_train_samples;
use lead::geo::haversine_m;
use lead::synth::{generate_dataset, SynthConfig};

/// Greedy distance clustering: endpoints within `radius_m` of a cluster
/// center join it, otherwise they seed a new cluster.
fn cluster(points: &[(f64, f64)], radius_m: f64) -> Vec<((f64, f64), usize)> {
    let mut clusters: Vec<((f64, f64), usize)> = Vec::new();
    for &(lat, lng) in points {
        match clusters
            .iter_mut()
            .find(|((clat, clng), _)| haversine_m(lat, lng, *clat, *clng) <= radius_m)
        {
            Some((center, count)) => {
                // Running mean keeps the center representative.
                center.0 = (center.0 * *count as f64 + lat) / (*count as f64 + 1.0);
                center.1 = (center.1 * *count as f64 + lng) / (*count as f64 + 1.0);
                *count += 1;
            }
            None => clusters.push(((lat, lng), 1)),
        }
    }
    clusters
}

fn main() {
    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = 40;
    synth.days_per_truck = 3;
    let dataset = generate_dataset(&synth);

    let mut config = LeadConfig::experiment();
    config.ae_max_epochs = 6;
    config.detector_max_epochs = 12;
    println!("training LEAD…");
    let train = to_train_samples(&dataset.train);
    let (lead, _) = Lead::fit(&train, &dataset.city.poi_db, &config, LeadOptions::full())
        .expect("training failed");

    // The registry of *known* facilities: the city's official loading and
    // unloading sites. In reality this is the licensed-facility database.
    let registry: Vec<(f64, f64)> = dataset
        .city
        .loading_sites
        .iter()
        .chain(&dataset.city.unloading_sites)
        .chain(&dataset.city.fueling_sites)
        .map(|s| (s.lat, s.lng))
        .collect();

    // Detect loaded trajectories fleet-wide and harvest their endpoints.
    let mut endpoints = Vec::new();
    for sample in dataset.test.iter().chain(&dataset.val) {
        let Some(result) = lead.detect(&sample.raw, &dataset.city.poi_db) else {
            continue;
        };
        for sp_idx in [result.detected.start_sp, result.detected.end_sp] {
            let sp = &result.processed.stay_points[sp_idx];
            if let Some(c) = result.processed.cleaned.slice(sp.start, sp.end).centroid() {
                endpoints.push(c);
            }
        }
    }
    println!("harvested {} loading/unloading endpoints", endpoints.len());

    let clusters = cluster(&endpoints, 400.0);
    println!("{} distinct l/u locations discovered:\n", clusters.len());
    let mut unregistered = 0;
    for ((lat, lng), count) in &clusters {
        let registered = registry
            .iter()
            .any(|&(rlat, rlng)| haversine_m(*lat, *lng, rlat, rlng) <= 500.0);
        if !registered {
            unregistered += 1;
            println!("  UNREGISTERED facility candidate at ({lat:.4}, {lng:.4}) — {count} visits");
        }
    }
    println!(
        "\n{}/{} discovered locations match the facility registry; {} flagged for inspection",
        clusters.len() - unregistered,
        clusters.len(),
        unregistered
    );
}
