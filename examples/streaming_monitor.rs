//! Live monitoring: replay a truck's day point-by-point through the
//! streaming detector and watch the loaded-trajectory hypothesis evolve —
//! the "act immediately" deployment mode the paper motivates (extension
//! beyond the paper's batch pipeline; see `lead_core::streaming`).
//!
//! Run with: `cargo run --release --example streaming_monitor`

use lead::core::config::LeadConfig;
use lead::core::pipeline::{Lead, LeadOptions};
use lead::core::streaming::StreamingDetector;
use lead::eval::runner::{test_case, to_train_samples};
use lead::synth::{generate_dataset, SynthConfig};

fn hhmm(t: i64) -> String {
    format!("{:02}:{:02}", (t / 3600) % 24, (t % 3600) / 60)
}

fn main() {
    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = 40;
    synth.days_per_truck = 2;
    let dataset = generate_dataset(&synth);

    let mut config = LeadConfig::experiment();
    config.ae_max_epochs = 6;
    config.detector_max_epochs = 12;
    println!("training LEAD…");
    let train = to_train_samples(&dataset.train);
    let (model, _) = Lead::fit(&train, &dataset.city.poi_db, &config, LeadOptions::full())
        .expect("training failed");

    // Replay the first test day with a mappable ground truth.
    let sample = dataset
        .test
        .iter()
        .find(|s| test_case(s, &config).is_some())
        .expect("a scorable test sample");
    let (_, truth) = test_case(sample, &config).expect("checked above");
    println!(
        "\nreplaying truck {} day {} ({} GPS points); true loaded trajectory ⟨sp_{} --→ sp_{}⟩\n",
        sample.truck_id,
        sample.day,
        sample.raw.len(),
        truth.start_sp,
        truth.end_sp
    );

    let mut stream = StreamingDetector::new(&model, &dataset.city.poi_db);
    for &p in sample.raw.points() {
        let update = stream.push(p);
        if update.filtered_out {
            println!("{}  GPS outlier filtered", hhmm(p.t));
            continue;
        }
        for &k in &update.completed_stays {
            println!(
                "{}  stay point sp_{k} completed ({} stays so far)",
                hhmm(p.t),
                stream.stay_points().len()
            );
        }
        if let Some(h) = update.hypothesis {
            println!(
                "{}    → current hypothesis: loaded ⟨sp_{} --→ sp_{}⟩",
                hhmm(p.t),
                h.detected.start_sp,
                h.detected.end_sp
            );
        }
    }

    match stream.finish() {
        Some(result) => {
            let hit = result.detected == truth;
            println!(
                "\nend of day: final detection ⟨sp_{} --→ sp_{}⟩ — {}",
                result.detected.start_sp,
                result.detected.end_sp,
                if hit {
                    "matches ground truth ✓"
                } else {
                    "misses ground truth ✗"
                }
            );
        }
        None => println!("\nend of day: fewer than two stay points, nothing to detect"),
    }
}
