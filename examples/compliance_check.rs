//! Regulation compliance checking — the paper's second motivating
//! application: "the HCT truck loaded with hazardous chemical is prohibited
//! from entering the main urban areas or moving on roads from 2:00 am to
//! 5:00 am. Once an HCT truck is found to violate the regulations, further
//! actions can be taken immediately."
//!
//! This example detects loaded trajectories on the test fleet and audits each
//! against both rules.
//!
//! Run with: `cargo run --release --example compliance_check`

use lead::core::config::LeadConfig;
use lead::core::pipeline::{Lead, LeadOptions};
use lead::eval::runner::to_train_samples;
use lead::geo::GpsPoint;
use lead::synth::{generate_dataset, City, SynthConfig};

/// A detected regulation violation.
#[derive(Debug)]
enum Violation {
    /// The loaded truck entered the main urban area.
    UrbanCore { t: i64, distance_to_center_m: f64 },
    /// The loaded truck moved between 2:00 and 5:00 am.
    NightMoving { t: i64, speed_kmh: f64 },
}

/// Audits a loaded trajectory against both regulations.
fn audit(points: &[GpsPoint], city: &City) -> Vec<Violation> {
    let mut violations = Vec::new();
    for w in points.windows(2) {
        let p = &w[1];
        let (x, y) = city.proj.to_xy(p.lat, p.lng);
        let r = (x * x + y * y).sqrt();
        if r < city.core_radius_m {
            violations.push(Violation::UrbanCore {
                t: p.t,
                distance_to_center_m: r,
            });
        }
        let hour = (p.t / 3600) % 24;
        let speed_kmh = w[0].speed_to_mps(p) * 3.6;
        if (2..5).contains(&hour) && speed_kmh > 5.0 {
            violations.push(Violation::NightMoving { t: p.t, speed_kmh });
        }
    }
    violations
}

fn main() {
    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = 40;
    synth.days_per_truck = 2;
    // Disable the regulatory urban-core detour in the simulator: every loaded
    // leg through the center now violates the ban, so the audit has
    // something to find.
    synth.detour_when_loaded = false;
    let dataset = generate_dataset(&synth);

    let mut config = LeadConfig::experiment();
    config.ae_max_epochs = 6;
    config.detector_max_epochs = 12;
    println!("training LEAD…");
    let train = to_train_samples(&dataset.train);
    let (lead, _) = Lead::fit(&train, &dataset.city.poi_db, &config, LeadOptions::full())
        .expect("training failed");

    println!("\nauditing loaded trajectories of the test fleet:\n");
    let mut flagged = 0;
    for sample in &dataset.test {
        let Some(result) = lead.detect(&sample.raw, &dataset.city.poi_db) else {
            continue;
        };
        let loaded = result.loaded_trajectory();
        let violations = audit(loaded.points(), &dataset.city);
        if violations.is_empty() {
            println!("truck {:>3} day {}: compliant", sample.truck_id, sample.day);
        } else {
            flagged += 1;
            println!(
                "truck {:>3} day {}: {} violations",
                sample.truck_id,
                sample.day,
                violations.len()
            );
            for v in violations.iter().take(3) {
                match v {
                    Violation::UrbanCore {
                        t,
                        distance_to_center_m,
                    } => println!(
                        "    {:02}:{:02} loaded inside urban core ({:.0} m from center)",
                        (t / 3600) % 24,
                        (t % 3600) / 60,
                        distance_to_center_m
                    ),
                    Violation::NightMoving { t, speed_kmh } => println!(
                        "    {:02}:{:02} moving at {:.0} km/h during the 2–5 am ban",
                        (t / 3600) % 24,
                        (t % 3600) / 60,
                        speed_kmh
                    ),
                }
            }
        }
    }
    println!("\n{flagged} trucks flagged for follow-up enforcement");
}
